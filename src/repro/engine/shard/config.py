"""Per-thread configuration for sharded execution.

Mirrors :mod:`repro.engine.parallel.config`: a frozen dataclass of knobs
plus a thread-local override stack, so the conformance tier can pin a
tiny deterministic geometry (2 workers, 3 shards) and each
:class:`~repro.service.QueryService` worker thread can route queries at
its service's own :class:`~repro.engine.shard.pool.ShardPool` without
racing other threads' settings.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro.engine.shard.pool import ShardPool, resolve_shard_workers
from repro.util.errors import ReproError


@dataclass(frozen=True)
class ShardConfig:
    """Knobs for one sharded evaluation.

    ``workers=None`` resolves through
    :func:`~repro.engine.shard.pool.resolve_shard_workers` (explicit >
    ``REPRO_SHARD_WORKERS`` > default — never ``os.cpu_count()``);
    ``shards=None`` means one shard per effective worker.  ``pool``
    pins evaluation to a specific pool (the service's own); ``None``
    uses the lazily-created process-wide shared pool.
    """

    workers: Optional[int] = None
    shards: Optional[int] = None
    #: An externally-owned pool (e.g. the QueryService's own shard pool).
    #: None means use the process-wide shared pool.
    pool: Optional[ShardPool] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.shards is not None and self.shards < 1:
            raise ReproError(f"shard count must be >= 1, got {self.shards}")

    def resolved_workers(self) -> int:
        if self.pool is not None:
            return self.pool.workers
        return resolve_shard_workers(self.workers)

    def resolved_shards(self) -> int:
        if self.shards is not None:
            return self.shards
        return max(self.resolved_workers(), 1)


_current = ShardConfig()
_lock = threading.Lock()
_tls = threading.local()


def current_shard_config() -> ShardConfig:
    """The effective config: innermost thread-local override, else global."""
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1]
    return _current


def set_shard_config(config: ShardConfig) -> ShardConfig:
    """Install a new process-wide config; returns the previous one."""
    global _current
    with _lock:
        previous, _current = _current, config
    return previous


@contextmanager
def using_shard_config(**overrides) -> Iterator[ShardConfig]:
    """Override config fields for the current thread's dynamic extent."""
    updated = replace(current_shard_config(), **overrides)
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append(updated)
    try:
        yield updated
    finally:
        stack.pop()
