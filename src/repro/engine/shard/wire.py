"""The cross-process shard wire format: the grace-hash spill format.

A shard travels between parent and worker exactly as a spilled partition
travels to disk (:mod:`repro.engine.parallel.spill`): consecutive pickled
batches of ``(row, multiplicity)`` pair lists, :data:`DEFAULT_BATCH_ROWS`
pairs per batch, ``pickle.HIGHEST_PROTOCOL``.  Reusing the format means
one serialization story for both pressure valves — memory pressure spills
to tempfiles, process distribution ships the same bytes through a pipe —
and the round-trip tests of either cover the other.

``Row`` and the ``NULL`` singleton both pickle faithfully (``_Null``
reduces to its singleton constructor, so ``decoded is NULL`` holds on the
far side), which is what keeps 3VL semantics intact across the process
boundary.

One subtlety matters for *performance* rather than correctness: strings
lose their identity when they cross the pipe.  Attribute names in the
parent are interned (they originate as source literals), so every hot
dict probe — hash-join key extraction, restrict evaluation — hits
CPython's pointer-equality fast path.  Unpickled strings are fresh
objects, so the same probes in a worker degrade to full string
comparison, a measurable tax on shard evaluation.  :func:`decode_pairs`
therefore re-interns row attribute names, and
:func:`intern_plan_strings` does the same for an unpickled expression
tree, restoring pointer-equality between the probing side (the plan)
and the probed side (the rows).
"""

from __future__ import annotations

import io
import pickle
import sys
from typing import Any, List, Tuple

from repro.algebra.tuples import Row
from repro.engine.parallel.spill import DEFAULT_BATCH_ROWS

#: One (row, multiplicity) pair — the unit of every partition and shard.
Pair = Tuple[Row, int]


def encode_pairs(pairs: List[Pair], batch_rows: int = DEFAULT_BATCH_ROWS) -> bytes:
    """Serialize a pair list into the spill-format byte stream."""
    if batch_rows < 1:
        raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
    buffer = io.BytesIO()
    for start in range(0, len(pairs), batch_rows):
        pickle.dump(pairs[start : start + batch_rows], buffer, pickle.HIGHEST_PROTOCOL)
    return buffer.getvalue()


def decode_pairs(blob: bytes, intern_keys: bool = True) -> List[Pair]:
    """Replay a spill-format byte stream back into its pair list.

    With ``intern_keys`` (the default) row attribute names are
    re-interned (see the module docstring): a one-time cost per decode,
    repaid on every subsequent dict probe against the rows — the right
    trade for a worker installing a shard it will evaluate many times.
    A caller that only aggregates the rows (the parent merging result
    payloads into a Counter probes by the cached row *hash*, not by
    attribute) passes ``False`` and skips the rebuild.  Row hashes are
    unaffected either way — interned strings equal the originals.
    """
    buffer = io.BytesIO(blob)
    pairs: List[Pair] = []
    while True:
        try:
            batch = pickle.load(buffer)
        except EOFError:
            break
        pairs.extend(batch)
    if intern_keys:
        intern = sys.intern
        for row, _count in pairs:
            values = row._values
            object.__setattr__(
                row, "_values", {intern(k): v for k, v in values.items()}
            )
    return pairs


def intern_plan_strings(obj: Any, _seen: set | None = None) -> None:
    """Re-intern every string reachable through an unpickled plan tree.

    Walks the slotted expression/predicate objects in place (they are
    freshly unpickled, so mutating them cannot alias anything else) and
    replaces each string — attribute names in comparisons, relation
    names, projection tuples — with its interned form.  Containers that
    hold strings (tuples, frozensets) are rebuilt.  Values that cannot
    hold strings (numbers, None) are skipped; anything else recurses.
    """
    seen = _seen if _seen is not None else set()
    if id(obj) in seen:
        return
    seen.add(id(obj))
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            try:
                value = getattr(obj, slot)
            except AttributeError:
                continue
            if isinstance(value, str):
                object.__setattr__(obj, slot, sys.intern(value))
            elif isinstance(value, tuple):
                rebuilt = tuple(
                    sys.intern(item) if isinstance(item, str) else item
                    for item in value
                )
                object.__setattr__(obj, slot, rebuilt)
                for item in rebuilt:
                    if not isinstance(
                        item, (str, int, float, bool, type(None))
                    ):
                        intern_plan_strings(item, seen)
            elif isinstance(value, frozenset):
                object.__setattr__(
                    obj,
                    slot,
                    frozenset(
                        sys.intern(item) if isinstance(item, str) else item
                        for item in value
                    ),
                )
            elif isinstance(value, (int, float, bool, type(None))):
                continue
            else:
                intern_plan_strings(value, seen)
