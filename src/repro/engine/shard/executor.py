"""Co-partitioned sharded evaluation: eligibility, dispatch, and merge.

The correctness argument is the PR-5 radix-partition routing rule lifted
from one join to a whole tree.  :func:`shard_spec_of` looks for a single
**attribute equivalence class** ``C`` (union-find over the equi-join
pairs of every binary node) such that

* every join in the tree has at least one equi conjunct inside ``C``,
  and
* every base relation contributes exactly one attribute to ``C`` — its
  *shard attribute*.

Shard every relation by ``hash(value) % nshards`` of its shard
attribute (null shard keys go to shard 0 — they can never satisfy an
equality, so "unmatched locally" equals "unmatched globally" and the
variant-specific padding of the outer/anti/semi joins is preserved).
Any two rows that could ever join agree on their ``C`` attributes, hence
hash alike, hence live on the same shard; extra equi conjuncts and
residual predicates only *filter* within a shard.  The whole core
expression therefore distributes over the shards, and the global answer
is the multiplicity-sum of the per-shard answers — which is exactly what
:func:`sharded_counts` computes, evaluating each shard in a worker
process (the child runs the same planned engine executor as the
threaded path, with the shard dispatch forced off; kernel toggles
propagate via the environment at spawn).

Projections with ``dedup`` and padded unions do **not** distribute over
the shard partition, so they never enter a core — the conformance tier
(and the optimizer, which only emits core-shaped trees) wraps them
around sharded cores via the algebra layer.
"""

from __future__ import annotations

import pickle
import threading
from collections import Counter, OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.algebra.nulls import NULL
from repro.algebra.relation import Database, Relation
from repro.algebra.kernels import decompose_join_predicate
from repro.algebra.schema import Schema, SchemaRegistry
from repro.core.expressions import (
    Antijoin,
    Expression,
    FullOuterJoin,
    Join,
    LeftOuterJoin,
    Rel,
    Restrict,
    RightAntijoin,
    RightOuterJoin,
    Semijoin,
)
from repro.engine.iterators import PhysicalOp
from repro.engine.metrics import Metrics
from repro.engine.shard.config import current_shard_config
from repro.engine.shard.pool import ShardPool, shared_shard_pool
from repro.engine.shard.wire import decode_pairs, encode_pairs
from repro.util.errors import PlanningError

#: Binary operators allowed inside a shardable core.  Two-sided padding
#: (FOJ) is fine — null and locally-unmatched rows pad per shard exactly
#: as they would globally.  GeneralizedOuterJoin is excluded: its
#: embedded projection carries dedup semantics.
_CORE_BINARY = (
    Join,
    LeftOuterJoin,
    RightOuterJoin,
    FullOuterJoin,
    Semijoin,
    Antijoin,
    RightAntijoin,
)


class _Ineligible(Exception):
    """Internal control flow for :func:`shard_spec_of`."""


def shard_spec_of(
    expr: Expression, registry: SchemaRegistry
) -> Optional[Dict[str, str]]:
    """The shard attribute per base relation, or None if not co-partitionable.

    Walks a candidate core (Rel / Restrict / the ``_CORE_BINARY``
    operators), decomposes every join predicate into equi pairs, unions
    the paired attributes into equivalence classes, and picks the first
    class (in sorted order, for determinism) that covers every join.
    Declines — returns ``None`` — on any non-core operator, any join
    with no equi conjunct, fewer than two base relations, or a relation
    that would need two different shard attributes.
    """
    join_pairs: List[List[Tuple[str, str]]] = []
    rels: List[str] = []

    def walk(node: Expression) -> None:
        if isinstance(node, Rel):
            rels.append(node.name)
            return
        if isinstance(node, Restrict):
            walk(node.child)
            return
        if isinstance(node, _CORE_BINARY):
            left_attrs = frozenset(node.left.scheme(registry))
            right_attrs = frozenset(node.right.scheme(registry))
            left_keys, right_keys, _residual = decompose_join_predicate(
                node.predicate, left_attrs, right_attrs
            )
            if not left_keys:
                raise _Ineligible
            join_pairs.append(list(zip(left_keys, right_keys)))
            walk(node.left)
            walk(node.right)
            return
        raise _Ineligible

    try:
        walk(expr)
    except _Ineligible:
        return None
    if len(rels) < 2 or not join_pairs:
        return None

    parent: Dict[str, str] = {}

    def find(attr: str) -> str:
        root = attr
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(attr, attr) != root:
            parent[attr], attr = root, parent[attr]
        return root

    for pairs in join_pairs:
        for left, right in pairs:
            parent[find(left)] = find(right)

    roots = sorted({find(a) for pairs in join_pairs for pair in pairs for a in pair})
    chosen = None
    for root in roots:
        if all(
            any(find(left) == root for left, _right in pairs) for pairs in join_pairs
        ):
            chosen = root
            break
    if chosen is None:
        return None

    spec: Dict[str, str] = {}
    for pairs in join_pairs:
        for pair in pairs:
            if find(pair[0]) != chosen:
                continue
            for attr in pair:
                rel = registry.owner(attr)
                if spec.setdefault(rel, attr) != attr:
                    return None
    if set(spec) != set(rels):
        return None
    return spec


#: Hash salt for shard routing.  ``hash(int) == int`` in CPython, so a
#: raw ``hash(v) % nshards`` sends a value-skewed key column (Zipf-style
#: workloads concentrate small integers) to a handful of shards; folding
#: the value into a salted tuple mixes the bits while preserving the
#: equality contract (``1``, ``1.0`` and ``True`` still hash alike, so
#: cross-type key matches stay co-located).
_SHARD_SALT = "repro-shard"


def _shard_of(value: object, nshards: int) -> int:
    return hash((_SHARD_SALT, value)) % nshards


def _shard_table(
    counts, attr: str, nshards: int
) -> List[List[Tuple[object, int]]]:
    """Partition one relation's counts on its shard attribute.

    Same routing rule as the PR-5 radix partitioner but with the salted
    hash (see :data:`_SHARD_SALT`) for balance under skew.  Partitioning
    happens only in the parent process, so per-process string-hash
    salting cannot desynchronize the routing.  Null shard keys ride on
    shard 0: they can never satisfy a join equality anywhere, so any one
    shard's padding rules treat them exactly as the global evaluation
    would.
    """
    parts: List[List[Tuple[object, int]]] = [[] for _ in range(nshards)]
    appends = [p.append for p in parts]
    for row, n in counts.items():
        value = row._values[attr]
        if value is NULL:
            appends[0]((row, n))
        else:
            appends[_shard_of(value, nshards)]((row, n))
    return parts


#: Cap on the per-process dispatch memo (see :func:`_dispatch_info`).
_DISPATCH_MEMO_CAP = 128

#: ``(id(expr), id(registry)) -> (expr, registry, spec, expr_blob)``.
#: The value pins both keys' objects so their ids cannot be recycled
#: while the entry lives.
_dispatch_memo: "OrderedDict[Tuple[int, int], tuple]" = OrderedDict()
_dispatch_memo_lock = threading.Lock()


def _dispatch_info(
    expr: Expression, registry: SchemaRegistry
) -> Tuple[Optional[Dict[str, str]], Optional[bytes]]:
    """The shard spec and pickled form of ``expr``, memoized.

    A query's chosen plan is a stable object under the optimizer's plan
    cache, so repeated queries would otherwise re-walk the spec
    union-find and re-pickle the identical expression every time —
    measurable parent-side CPU on the service hot path.  Keyed by
    object identity of both the expression and the registry (the spec
    depends on attribute ownership), with the objects pinned in the
    value so id reuse cannot alias entries.
    """
    key = (id(expr), id(registry))
    with _dispatch_memo_lock:
        hit = _dispatch_memo.get(key)
        if hit is not None and hit[0] is expr and hit[1] is registry:
            _dispatch_memo.move_to_end(key)
            return hit[2], hit[3]
    spec = shard_spec_of(expr, registry)
    blob = (
        pickle.dumps(expr, pickle.HIGHEST_PROTOCOL) if spec is not None else None
    )
    with _dispatch_memo_lock:
        _dispatch_memo[key] = (expr, registry, spec, blob)
        _dispatch_memo.move_to_end(key)
        while len(_dispatch_memo) > _DISPATCH_MEMO_CAP:
            _dispatch_memo.popitem(last=False)
    return spec, blob


def sharded_counts(
    expr: Expression,
    db: Database,
    pool: Optional[ShardPool] = None,
    shards: Optional[int] = None,
) -> Tuple[Schema, Counter]:
    """Evaluate a core expression sharded over a database snapshot.

    Shards are shipped inline with every call (the conformance tier's
    mode of use — each fuzz case is a fresh database).  The service path
    uses :func:`sharded_counts_storage`, which keeps table shards
    resident in the workers.  Raises :class:`PlanningError` when the
    expression is not co-partitionable.
    """
    config = current_shard_config()
    if pool is None:
        pool = config.pool if config.pool is not None else shared_shard_pool()
    nshards = shards if shards is not None else config.resolved_shards()
    registry = db.registry
    spec, expr_blob = _dispatch_info(expr, registry)
    if spec is None:
        raise PlanningError(
            "sharded execution declines: no single attribute class co-partitions "
            f"{expr.to_infix()}"
        )
    schema = expr.scheme(registry)

    shard_tables: List[Dict[str, Tuple[tuple, list]]] = [
        {} for _ in range(nshards)
    ]
    for rel in sorted(spec):
        attrs = tuple(registry[rel])
        parts = _shard_table(db[rel].counts(), spec[rel], nshards)
        for index, part in enumerate(parts):
            shard_tables[index][rel] = (attrs, part)

    merged: Counter = Counter()
    if pool.workers < 1:
        # Ledger clamped the pool to nothing: evaluate inline, serially.
        for tables in shard_tables:
            local = Database(
                {
                    rel: Relation.from_counts(attrs, dict(pairs))
                    for rel, (attrs, pairs) in tables.items()
                }
            )
            for row, count in expr.eval(local).counts().items():
                merged[row] += count
        return schema, merged

    by_worker: Dict[int, List[int]] = {}
    for index in range(nshards):
        by_worker.setdefault(pool.worker_for(index), []).append(index)
    jobs = [
        (
            worker_index,
            [],
            [
                (
                    expr_blob,
                    {
                        rel: ("inline", attrs, encode_pairs(pairs))
                        for rel, (attrs, pairs) in shard_tables[index].items()
                    },
                )
                for index in by_worker[worker_index]
            ],
        )
        for worker_index in sorted(by_worker)
    ]
    for payload in pool.run_many(jobs):
        merged.update(dict(decode_pairs(payload, intern_keys=False)))
    return schema, merged


def _shard_blobs(storage, rel: str, attr: str, nshards: int) -> List[bytes]:
    """Wire-format shard blobs for one table, cached on the table itself.

    :meth:`~repro.engine.storage.Table.derived` keys the cache by table
    version, so a mutation invalidates the blobs exactly when it
    invalidates the storage's cached oracle view.
    """
    table = storage[rel]

    def build() -> List[bytes]:
        counts = table.to_relation().counts()
        return [encode_pairs(part) for part in _shard_table(counts, attr, nshards)]

    return table.derived(("shard-blobs", attr, nshards), build)


def sharded_counts_storage(
    expr: Expression,
    storage,
    pool: Optional[ShardPool] = None,
    shards: Optional[int] = None,
) -> Tuple[Schema, Counter]:
    """Evaluate a core expression sharded over live storage.

    The steady-state fast path of the service: table shards are encoded
    once per table version (cached via ``Table.derived``) and installed
    in each worker once per ``(storage, table version, attribute,
    geometry)`` — after warm-up a query ships only its pickled
    expression and shard references, and the result rows come back.
    """
    config = current_shard_config()
    if pool is None:
        pool = config.pool if config.pool is not None else shared_shard_pool()
    nshards = shards if shards is not None else config.resolved_shards()
    db = storage.to_database()
    registry = db.registry
    spec, expr_blob = _dispatch_info(expr, registry)
    if spec is None:
        raise PlanningError(
            "sharded execution declines: no single attribute class co-partitions "
            f"{expr.to_infix()}"
        )
    schema = expr.scheme(registry)
    if pool.workers < 1:
        return sharded_counts(expr, db, pool=pool, shards=nshards)

    token = storage.generation[0]
    rel_blobs: Dict[str, List[bytes]] = {}
    rel_keys: Dict[str, List[tuple]] = {}
    for rel in sorted(spec):
        version = storage[rel].version
        rel_blobs[rel] = _shard_blobs(storage, rel, spec[rel], nshards)
        rel_keys[rel] = [
            (token, rel, version, spec[rel], nshards, index)
            for index in range(nshards)
        ]

    merged: Counter = Counter()
    by_worker: Dict[int, List[int]] = {}
    for index in range(nshards):
        by_worker.setdefault(pool.worker_for(index), []).append(index)
    jobs = []
    for worker_index in sorted(by_worker):
        installs = []
        evals = []
        for index in by_worker[worker_index]:
            rels = {}
            for rel in sorted(spec):
                key = rel_keys[rel][index]
                attrs = tuple(registry[rel])
                installs.append((key, attrs, rel_blobs[rel][index]))
                rels[rel] = ("ref", key)
            evals.append((expr_blob, rels))
        jobs.append((worker_index, installs, evals))
    for payload in pool.run_many(jobs):
        merged.update(dict(decode_pairs(payload, intern_keys=False)))
    return schema, merged


class ShardedEvalOp(PhysicalOp):
    """A physical operator that evaluates its expression across the shards.

    Slots into the ordinary executor machinery — metrics, EXPLAIN, span
    tracing, cooperative cancellation at the drain loop — so a sharded
    query is observable exactly like a threaded one.
    """

    batch_native = False

    def __init__(
        self,
        expr: Expression,
        storage,
        pool: ShardPool,
        shards: int,
    ):
        self.expr = expr
        self.storage = storage
        self.pool = pool
        self.shards = shards
        self.schema = expr.scheme(storage.to_database().registry)

    def _execute_rows(self, metrics: Metrics):
        _schema, merged = sharded_counts_storage(
            self.expr, self.storage, pool=self.pool, shards=self.shards
        )
        emitted = 0
        for row, count in merged.items():
            emitted += count
            for _ in range(count):
                yield row
        metrics.emitted("sharded_eval", emitted)

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}ShardedEval[shards={self.shards} workers={self.pool.workers} "
            f"over {self.expr.to_infix()}]"
        )


def execute_sharded(op: ShardedEvalOp, cancel=None):
    """Run a sharded plan, adopting the merged counts as the result.

    The generic drain (:class:`ShardedEvalOp` through
    :func:`~repro.engine.executor.execute_plan`) yields every row once
    per multiplicity and then rebuilds the very Counter the merge
    already produced — pure overhead on the hot path, and on a
    single-core host the sharded/threaded race is decided by exactly
    this kind of parent-side CPU.  With no tracer active, skip the
    drain: hand the merged Counter straight to the result Relation
    (:meth:`~repro.algebra.relation.Relation._adopt_counts` — every row
    came from a worker's validated Relation, so the checks were already
    paid).  Any active tracer falls back to the drained path so spans
    and EXPLAIN ANALYZE observe the operator exactly as before.
    """
    from repro.engine.executor import ExecutionResult, execute_plan
    from repro.observability.spans import current_tracer

    if current_tracer() is not None:
        return execute_plan(op, cancel=cancel)
    if cancel is not None:
        cancel.check()
    metrics = Metrics(cancel=cancel)
    _schema, merged = sharded_counts_storage(
        op.expr, op.storage, pool=op.pool, shards=op.shards
    )
    if cancel is not None:
        cancel.check()
    metrics.emitted("sharded_eval", sum(merged.values()))
    relation = Relation._adopt_counts(op.schema, merged)
    return ExecutionResult(relation=relation, metrics=metrics, plan=op)


def plan_sharded(expr: Expression, storage) -> Optional[ShardedEvalOp]:
    """A sharded plan for ``expr``, or None when the dispatch declines.

    Consulted by :func:`repro.engine.executor.execute` only when
    :func:`~repro.util.fastpath.shard_enabled` says so; declining (not
    co-partitionable, or fewer than two worker processes available)
    falls back to the threaded path, byte-identically.
    """
    config = current_shard_config()
    pool = config.pool if config.pool is not None else shared_shard_pool()
    if pool.workers < 2:
        return None
    registry = storage.to_database().registry
    spec, _blob = _dispatch_info(expr, registry)
    if spec is None:
        return None
    return ShardedEvalOp(expr, storage, pool, config.resolved_shards())
