"""Process-sharded execution: co-partitioned joins across worker processes.

The morsel executor of :mod:`repro.engine.parallel` and the
:class:`~repro.service.QueryService` thread pool are both GIL-bound: one
core of real Python work, however many threads.  This package adds the
scale-out axis from ROADMAP item 5 — tables are hash-sharded on a single
join-key attribute class (the PR-5 radix-partition routing rule, so any
two rows that could ever join land on the same shard), each shard of the
database lives in a persistent **worker process**, and a query whose
join tree is co-partitionable evaluates independently per shard with a
multiplicity-sum merge in the parent.  Shards cross the process boundary
in the grace-hash spill wire format (:mod:`repro.engine.shard.wire`).

Dispatch is opt-in behind ``REPRO_SHARD`` (default off) — with the
switch off the shard machinery is never consulted and the threaded path
is byte-identical to a build without this package.  Worker-process
leases are drawn from the same :class:`~repro.engine.parallel.pool.WorkerLedger`
as every thread pool, so threads + processes respect one global budget.
"""

from repro.engine.shard.config import (
    ShardConfig,
    current_shard_config,
    set_shard_config,
    using_shard_config,
)
from repro.engine.shard.executor import (
    ShardedEvalOp,
    plan_sharded,
    shard_spec_of,
    sharded_counts,
)
from repro.engine.shard.pool import (
    DEFAULT_SHARD_WORKERS,
    ShardPool,
    ShardWorkerError,
    resolve_shard_workers,
    reset_shared_shard_pool,
    shared_shard_pool,
)
from repro.engine.shard.wire import decode_pairs, encode_pairs

__all__ = [
    "DEFAULT_SHARD_WORKERS",
    "ShardConfig",
    "ShardPool",
    "ShardWorkerError",
    "ShardedEvalOp",
    "current_shard_config",
    "decode_pairs",
    "encode_pairs",
    "plan_sharded",
    "reset_shared_shard_pool",
    "resolve_shard_workers",
    "set_shard_config",
    "shard_spec_of",
    "sharded_counts",
    "shared_shard_pool",
    "using_shard_config",
]
