"""Morsel-driven parallel join execution with memory-bounded spill.

The package splits into five small layers:

* :mod:`~repro.engine.parallel.pool` — deterministic worker pools and the
  process-wide :class:`WorkerLedger` (max-total-workers invariant);
* :mod:`~repro.engine.parallel.budget` — :class:`MemoryBudget` metering
  with the ``REPRO_MEMORY_BUDGET`` env contract;
* :mod:`~repro.engine.parallel.spill` — :class:`PartitionBuffer`, the
  memory→spilled→closed grace-hash state machine over tempfiles;
* :mod:`~repro.engine.parallel.partition` — radix partitioning with the
  dedicated null partition;
* :mod:`~repro.engine.parallel.joins` — per-partition build/probe kernels
  for all join variants and the :func:`parallel_counts` driver.

The enable switch is :func:`repro.util.fastpath.parallel_enabled`
(``REPRO_PARALLEL=1``); the algebra operators and the engine's
``ParallelHashJoin`` both dispatch through :func:`parallel_counts`.
"""

from repro.engine.parallel.budget import (
    BUDGET_ENV,
    MemoryBudget,
    env_budget_bytes,
    parse_budget,
    process_budget,
    reset_process_budget,
    row_bytes,
)
from repro.engine.parallel.config import (
    DEFAULT_MIN_ROWS,
    DEFAULT_PARTITIONS,
    ParallelConfig,
    current_config,
    set_config,
    using_config,
)
from repro.engine.parallel.joins import VARIANTS, parallel_counts, run_partition_task
from repro.engine.parallel.partition import partition_counts
from repro.engine.parallel.pool import (
    DEFAULT_MAX_TOTAL,
    DEFAULT_WORKERS,
    GLOBAL_LEDGER,
    MAX_TOTAL_ENV,
    WORKERS_ENV,
    WorkerLedger,
    WorkerPool,
    max_total_workers,
    reset_shared_pool,
    resolve_workers,
    shared_pool,
)
from repro.engine.parallel.spill import PartitionBuffer

__all__ = [
    "BUDGET_ENV",
    "DEFAULT_MAX_TOTAL",
    "DEFAULT_MIN_ROWS",
    "DEFAULT_PARTITIONS",
    "DEFAULT_WORKERS",
    "GLOBAL_LEDGER",
    "MAX_TOTAL_ENV",
    "MemoryBudget",
    "ParallelConfig",
    "PartitionBuffer",
    "VARIANTS",
    "WORKERS_ENV",
    "WorkerLedger",
    "WorkerPool",
    "current_config",
    "env_budget_bytes",
    "max_total_workers",
    "parallel_counts",
    "parse_budget",
    "partition_counts",
    "process_budget",
    "reset_process_budget",
    "reset_shared_pool",
    "resolve_workers",
    "row_bytes",
    "run_partition_task",
    "set_config",
    "shared_pool",
    "using_config",
]
