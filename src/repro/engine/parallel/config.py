"""Configuration for the morsel-driven parallel executor.

The on/off switch lives in :mod:`repro.util.fastpath`
(:func:`~repro.util.fastpath.parallel_enabled`, driven by the
``REPRO_PARALLEL`` environment variable) so the algebra layer can consult
it without importing the engine.  Everything *about* parallel execution
once it is on — worker count, radix partition count, pool mode, the
small-input gate, spill directory — lives here in a
:class:`ParallelConfig`, swapped atomically via :func:`set_config` or the
:func:`using_config` context manager (the conformance ``parallel`` tier
pins ``workers=2, partitions=3, min_rows=0`` for determinism).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro.engine.parallel.pool import WorkerPool
from repro.util.errors import ReproError

#: Default radix partition count.  Deliberately larger than the default
#: worker count so the pool can balance skewed partitions, and fixed (not
#: derived from input size) so plans are reproducible.
DEFAULT_PARTITIONS = 8

#: Below this many *distinct* input rows (left + right) the partitioning
#: overhead outweighs the win and the parallel path declines, letting the
#: serial kernels handle the operator.  The conformance tier forces 0.
DEFAULT_MIN_ROWS = 2048


@dataclass(frozen=True)
class ParallelConfig:
    """One immutable bundle of parallel-execution knobs."""

    workers: Optional[int] = None  # None -> pool.resolve_workers()
    partitions: int = DEFAULT_PARTITIONS
    mode: str = "thread"
    min_rows: int = DEFAULT_MIN_ROWS
    spill_dir: Optional[str] = None
    #: An externally-owned pool (e.g. the QueryService's shared intra-query
    #: pool).  None means use the process-wide shared pool.
    pool: Optional[WorkerPool] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ReproError(f"partitions must be >= 1, got {self.partitions}")
        if self.min_rows < 0:
            raise ReproError(f"min_rows must be >= 0, got {self.min_rows}")


_current = ParallelConfig()
_lock = threading.Lock()
_tls = threading.local()


def current_config() -> ParallelConfig:
    """The effective config: innermost thread-local override, else global.

    The thread-local layer is what lets each QueryService worker pin its
    own intra-query pool via :func:`using_config` without racing other
    workers' restores.
    """
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1]
    return _current


def set_config(config: ParallelConfig) -> ParallelConfig:
    """Install a new process-wide config; returns the previous one."""
    global _current
    with _lock:
        previous, _current = _current, config
    return previous


@contextmanager
def using_config(**overrides) -> Iterator[ParallelConfig]:
    """Override config fields for the current thread's dynamic extent."""
    updated = replace(current_config(), **overrides)
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append(updated)
    try:
        yield updated
    finally:
        stack.pop()
