"""Worker pools for intra-query parallelism, with a global worker ledger.

Two design rules, both motivated by reproducibility on small CI runners:

* **Sizing is explicit and deterministic.**  Nothing in this module ever
  consults ``os.cpu_count()``: a pool has exactly the worker count it was
  asked for, resolved through :func:`resolve_workers` (explicit argument,
  else the ``REPRO_PARALLEL_WORKERS`` environment variable, else
  :data:`DEFAULT_WORKERS`).  A 1/2/4/8-worker benchmark grid therefore
  means the same thing on a 2-core CI runner as on a 64-core box — the
  worker counts are part of the experiment, not a property of the host.

* **One process-wide worker ceiling.**  Inter-query parallelism (the
  :class:`~repro.service.QueryService` thread pool) and intra-query
  parallelism (partition fan-out inside one join) draw from the same
  :class:`WorkerLedger`.  The ledger enforces the *max-total-workers
  invariant*: the sum of granted workers never exceeds
  :func:`max_total_workers`.  A request that would exceed the ceiling is
  clamped, possibly to zero — a pool granted zero workers still works, it
  just runs its tasks inline on the caller's thread.  Saturation degrades
  to serial execution, never to unbounded thread creation.

Pools run in one of three modes:

* ``"serial"`` — tasks run inline on the calling thread (the zero-cost
  degenerate pool; also what a 1-worker pool uses);
* ``"thread"`` — a ``ThreadPoolExecutor``; the default.  Partition tasks
  are pure Python, so threads add structure (and overlap any releases of
  the GIL) rather than linear scaling on CPython;
* ``"process"`` — a ``ProcessPoolExecutor`` for true multi-core scaling;
  task functions must be module-level and arguments picklable, which the
  partition kernels in :mod:`repro.engine.parallel.kernels` are.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, List, Optional, Sequence

from repro.util.errors import ReproError

#: Environment variable naming the default intra-query worker count.
WORKERS_ENV = "REPRO_PARALLEL_WORKERS"

#: Environment variable naming the process-wide worker ceiling.
MAX_TOTAL_ENV = "REPRO_MAX_TOTAL_WORKERS"

#: Default worker count when neither an argument nor the environment
#: says otherwise.  A constant, deliberately not ``os.cpu_count()``.
DEFAULT_WORKERS = 4

#: Default process-wide ceiling on workers granted by the ledger.
DEFAULT_MAX_TOTAL = 16

#: Pool execution modes.
POOL_MODES = ("serial", "thread", "process")


def resolve_workers(requested: Optional[int] = None) -> int:
    """The effective worker count: explicit > environment > default.

    Never consults the host CPU count — see the module docstring.
    """
    if requested is not None:
        if requested < 0:
            raise ReproError(f"worker count must be >= 0, got {requested}")
        return requested
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ReproError(f"{WORKERS_ENV}={raw!r} is not an integer") from None
        if value < 0:
            raise ReproError(f"{WORKERS_ENV} must be >= 0, got {value}")
        return value
    return DEFAULT_WORKERS


def max_total_workers() -> int:
    """The process-wide worker ceiling (``REPRO_MAX_TOTAL_WORKERS``)."""
    raw = os.environ.get(MAX_TOTAL_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ReproError(f"{MAX_TOTAL_ENV}={raw!r} is not an integer") from None
        if value < 1:
            raise ReproError(f"{MAX_TOTAL_ENV} must be >= 1, got {value}")
        return value
    return DEFAULT_MAX_TOTAL


class WorkerLedger:
    """Accounting for the max-total-workers invariant.

    ``acquire(n)`` grants ``min(n, remaining)`` workers (possibly zero)
    and records the grant; ``release`` returns them.  The invariant —
    granted total never exceeds the ceiling — holds at every instant, and
    :meth:`snapshot` exposes the books so tests can assert it.

    Grants carry a ``kind`` — ``"thread"`` (service threads, intra-query
    thread pools) or ``"process"`` (the sharded execution workers of
    :mod:`repro.engine.shard`) — but both draw from the *same* ceiling:
    a process worker is a core-occupying unit of concurrency exactly like
    a thread, so threads + processes together never exceed
    :func:`max_total_workers`.
    """

    KINDS = ("thread", "process")

    def __init__(self, ceiling: Optional[int] = None):
        self._ceiling = ceiling
        self._granted = 0
        self._grants: dict[str, int] = {}
        self._by_kind: dict[str, int] = {kind: 0 for kind in self.KINDS}
        self._lock = threading.Lock()

    @property
    def ceiling(self) -> int:
        return self._ceiling if self._ceiling is not None else max_total_workers()

    def acquire(self, requested: int, name: str = "pool", kind: str = "thread") -> int:
        """Grant up to ``requested`` workers; the remainder is clamped off."""
        if requested < 0:
            raise ReproError(f"cannot acquire a negative worker count ({requested})")
        if kind not in self.KINDS:
            raise ReproError(f"unknown worker kind {kind!r}; expected one of {self.KINDS}")
        with self._lock:
            remaining = max(self.ceiling - self._granted, 0)
            granted = min(requested, remaining)
            self._granted += granted
            self._by_kind[kind] += granted
            if granted:
                self._grants[name] = self._grants.get(name, 0) + granted
            return granted

    def release(self, granted: int, name: str = "pool", kind: str = "thread") -> None:
        if kind not in self.KINDS:
            raise ReproError(f"unknown worker kind {kind!r}; expected one of {self.KINDS}")
        with self._lock:
            if granted > self._granted:
                raise ReproError(
                    f"ledger release of {granted} exceeds outstanding {self._granted}"
                )
            if granted > self._by_kind[kind]:
                raise ReproError(
                    f"ledger release of {granted} {kind} workers exceeds "
                    f"outstanding {self._by_kind[kind]}"
                )
            self._granted -= granted
            self._by_kind[kind] -= granted
            if name in self._grants:
                self._grants[name] -= granted
                if self._grants[name] <= 0:
                    del self._grants[name]

    @property
    def granted(self) -> int:
        with self._lock:
            return self._granted

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "ceiling": self.ceiling,
                "granted": self._granted,
                "grants": dict(self._grants),
                "by_kind": dict(self._by_kind),
            }


#: The process-wide ledger every pool and the query service register with.
GLOBAL_LEDGER = WorkerLedger()


class WorkerPool:
    """A deterministic-size task pool for partition fan-out.

    ``workers`` resolves through :func:`resolve_workers`; when a ``ledger``
    is supplied the resolved count is additionally clamped by
    :meth:`WorkerLedger.acquire` so the max-total-workers invariant holds.
    A pool whose effective worker count is 0 or 1 runs tasks inline — the
    semantics of :meth:`map` are identical in every mode.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        mode: str = "thread",
        name: str = "parallel",
        ledger: Optional[WorkerLedger] = None,
    ):
        if mode not in POOL_MODES:
            raise ReproError(f"unknown pool mode {mode!r}; expected one of {POOL_MODES}")
        requested = resolve_workers(workers)
        self.name = name
        self.mode = mode if requested > 1 else "serial"
        self._ledger = ledger
        self._leased = ledger.acquire(requested, name) if ledger is not None else requested
        self.workers = self._leased if ledger is not None else requested
        self._executor = None
        self._closed = False
        self._lock = threading.Lock()

    # -- execution -----------------------------------------------------------

    def _ensure_executor(self):
        with self._lock:
            if self._closed:
                raise ReproError(f"pool {self.name!r} is closed")
            if self._executor is None:
                if self.mode == "thread":
                    from concurrent.futures import ThreadPoolExecutor

                    self._executor = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix=f"repro-{self.name}",
                    )
                elif self.mode == "process":
                    from concurrent.futures import ProcessPoolExecutor

                    self._executor = ProcessPoolExecutor(max_workers=self.workers)
            return self._executor

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over ``tasks``; results come back in task order.

        Inline (serial) execution when the pool has fewer than two
        effective workers or fewer than two tasks — identical results,
        no thread hand-off cost.
        """
        items = list(tasks)
        if self.mode == "serial" or self.workers < 2 or len(items) < 2:
            return [fn(item) for item in items]
        executor = self._ensure_executor()
        return list(executor.map(fn, items))

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the executor down and return leased workers to the ledger."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        if self._ledger is not None and self._leased:
            self._ledger.release(self._leased, self.name)
            self._leased = 0

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "mode": self.mode,
            "workers": self.workers,
            "closed": self._closed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerPool({self.name!r}, mode={self.mode}, workers={self.workers})"


#: Lazily-created process-wide shared pool (intra-query default).
_shared: Optional[WorkerPool] = None
_shared_lock = threading.Lock()


def shared_pool() -> WorkerPool:
    """The process-wide intra-query pool, created on first use.

    Sized by :func:`resolve_workers` and registered with the global
    ledger, so ambient parallel execution respects the same ceiling as
    explicitly-constructed pools.
    """
    global _shared
    with _shared_lock:
        if _shared is None or _shared.closed:
            _shared = WorkerPool(name="shared", ledger=GLOBAL_LEDGER)
        return _shared


def reset_shared_pool() -> None:
    """Close and forget the shared pool (tests and env changes)."""
    global _shared
    with _shared_lock:
        pool, _shared = _shared, None
    if pool is not None:
        pool.close()
