"""Grace-hash spill buffers: partition state that degrades to tempfiles.

A :class:`PartitionBuffer` accumulates one radix partition's rows as
``(row, multiplicity)`` pairs.  It starts **in memory** and charges every
appended row to a :class:`~repro.engine.parallel.budget.MemoryBudget`;
the first refused reservation flips it to the **spilled** state: the
in-memory batch is pickled to an unnamed ``tempfile`` (unlinked on
close, so a crashed process leaks nothing), the budgeted bytes are
released, and subsequent appends buffer into a small write-behind batch
that is flushed whenever it grows past ``batch_rows``.  The state
machine is one-way —

    memory --(budget refusal)--> spilled --(close)--> closed

— because un-spilling buys nothing: a partition that exceeded the budget
once will again.  ``drain()`` replays the buffer's contents in append
order (spilled batches first, then the tail batch) regardless of state,
so consumers are state-blind; bag semantics are preserved exactly since
pairs are replayed verbatim.

Rows, the ``NULL`` singleton, and predicate objects all pickle cleanly
(``_Null.__reduce__`` returns the singleton constructor), which is what
makes batched ``pickle.dump`` the storage format.  Batching matters:
one ``dump`` per batch amortizes pickling overhead, and protocol
``HIGHEST_PROTOCOL`` keeps the files compact.
"""

from __future__ import annotations

import pickle
import tempfile
import threading
from typing import Iterator, List, Optional, Tuple

from repro.algebra.tuples import Row
from repro.engine.parallel.budget import MemoryBudget, row_bytes
from repro.util.errors import ReproError

#: Rows per pickled batch once a buffer has spilled.
DEFAULT_BATCH_ROWS = 512

#: Buffer states.
STATE_MEMORY = "memory"
STATE_SPILLED = "spilled"
STATE_CLOSED = "closed"


class PartitionBuffer:
    """One partition's rows, in memory until the budget says otherwise."""

    def __init__(
        self,
        name: str = "partition",
        budget: Optional[MemoryBudget] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        spill_dir: Optional[str] = None,
    ):
        if batch_rows < 1:
            raise ReproError(f"batch_rows must be >= 1, got {batch_rows}")
        self.name = name
        self.state = STATE_MEMORY
        self._budget = budget
        self._batch_rows = batch_rows
        self._spill_dir = spill_dir
        self._pairs: List[Tuple[Row, int]] = []
        self._reserved = 0
        self._rows = 0
        self._file = None
        self._spilled_batches = 0
        self._lock = threading.Lock()

    # -- append path ---------------------------------------------------------

    def append(self, row: Row, count: int = 1) -> None:
        """Add ``count`` copies of ``row``; may trigger a spill transition."""
        with self._lock:
            if self.state == STATE_CLOSED:
                raise ReproError(f"partition buffer {self.name!r} is closed")
            self._rows += count
            if self.state == STATE_MEMORY and self._budget is not None:
                nbytes = row_bytes(row)
                if self._budget.try_reserve(nbytes):
                    self._reserved += nbytes
                    self._pairs.append((row, count))
                    return
                self._spill_locked()
            self._pairs.append((row, count))
            if self.state == STATE_SPILLED and len(self._pairs) >= self._batch_rows:
                self._flush_locked()

    def extend(self, pairs) -> None:
        for row, count in pairs:
            self.append(row, count)

    # -- spill transition ----------------------------------------------------

    def _spill_locked(self) -> None:
        """memory -> spilled: move the held batch to a tempfile."""
        self._file = tempfile.TemporaryFile(
            prefix=f"repro-spill-{self.name}-", dir=self._spill_dir
        )
        if self._pairs:
            pickle.dump(self._pairs, self._file, pickle.HIGHEST_PROTOCOL)
            self._spilled_batches += 1
            self._pairs = []
        if self._reserved:
            self._budget.release(self._reserved)
            self._reserved = 0
        self.state = STATE_SPILLED

    def _flush_locked(self) -> None:
        if self._pairs:
            pickle.dump(self._pairs, self._file, pickle.HIGHEST_PROTOCOL)
            self._spilled_batches += 1
            self._pairs = []

    def force_spill(self) -> None:
        """Spill now regardless of budget state (tests and drills)."""
        with self._lock:
            if self.state == STATE_MEMORY:
                self._spill_locked()

    # -- drain path ----------------------------------------------------------

    def drain(self) -> Iterator[Tuple[Row, int]]:
        """Yield all ``(row, count)`` pairs in append order and close.

        Draining consumes the buffer: budget bytes are released and the
        spill file (if any) is deleted once exhausted.
        """
        with self._lock:
            if self.state == STATE_CLOSED:
                raise ReproError(f"partition buffer {self.name!r} already drained")
            if self.state == STATE_SPILLED:
                self._flush_locked()
            state = self.state
            pairs, self._pairs = self._pairs, []
            file, self._file = self._file, None
            batches = self._spilled_batches
            self.state = STATE_CLOSED
            if self._reserved:
                self._budget.release(self._reserved)
                self._reserved = 0
        if state == STATE_SPILLED:
            try:
                file.seek(0)
                for _ in range(batches):
                    yield from pickle.load(file)
            finally:
                file.close()
        yield from pairs

    def close(self) -> None:
        """Discard the buffer's contents and resources without draining."""
        with self._lock:
            if self.state == STATE_CLOSED:
                return
            self._pairs = []
            if self._file is not None:
                self._file.close()
                self._file = None
            if self._reserved:
                self._budget.release(self._reserved)
                self._reserved = 0
            self.state = STATE_CLOSED

    # -- introspection -------------------------------------------------------

    @property
    def rows(self) -> int:
        """Total multiplicity appended so far."""
        with self._lock:
            return self._rows

    @property
    def spilled(self) -> bool:
        return self.state == STATE_SPILLED

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "state": self.state,
                "rows": self._rows,
                "reserved_bytes": self._reserved,
                "spilled_batches": self._spilled_batches,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionBuffer({self.name!r}, state={self.state}, rows={self.rows})"
