"""Per-operator memory budgets that degrade to spill instead of OOMing.

A :class:`MemoryBudget` meters the bytes an operator's in-memory state is
allowed to hold.  Consumers call :meth:`try_reserve` before growing a
buffer; a ``False`` answer is not an error but a *degrade signal* — the
caller moves the buffer to a grace-hash spill file (see
:mod:`repro.engine.parallel.spill`) and releases the bytes it was
holding.  The budget therefore never raises on exhaustion; it converts
"would OOM" into "runs slower off tempfiles", which is the contract the
low-memory CI job (``REPRO_MEMORY_BUDGET=8MB``) exercises on every PR.

Sizing uses :func:`row_bytes`, a deliberately simple estimator
(``sys.getsizeof`` over the row mapping's keys and values, memoized per
scheme for the fixed per-row overhead).  The estimate only has to be
*monotone* — more/bigger rows cost more — for the degrade decision to be
sound; bag-equality of results never depends on it.

Budgets form a two-level hierarchy mirroring PR 3's mem high-water
accounting: one process budget (:func:`process_budget`, sized by the
``REPRO_MEMORY_BUDGET`` env var, e.g. ``8MB``; unset means unlimited)
and per-operator child budgets that draw from it.  High-water marks are
tracked at both levels and flow into the ``mem_budget_*`` span counters.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, Mapping, Optional

from repro.util.errors import ReproError

#: Environment variable holding the process memory budget (e.g. "8MB").
BUDGET_ENV = "REPRO_MEMORY_BUDGET"

_UNITS = {
    "B": 1,
    "KB": 1024,
    "MB": 1024 * 1024,
    "GB": 1024 * 1024 * 1024,
}


def parse_budget(text: str) -> Optional[int]:
    """Parse ``"8MB"`` / ``"512kb"`` / ``"1048576"`` into bytes.

    Empty / ``"0"`` / ``"unlimited"`` / ``"none"`` mean no budget (None).
    """
    raw = text.strip()
    if not raw or raw.lower() in ("unlimited", "none", "off"):
        return None
    upper = raw.upper().replace(" ", "")
    for unit in ("GB", "MB", "KB", "B"):
        if upper.endswith(unit):
            number = upper[: -len(unit)]
            break
    else:
        unit, number = "B", upper
    try:
        value = float(number)
    except ValueError:
        raise ReproError(f"cannot parse memory budget {text!r}") from None
    if value < 0:
        raise ReproError(f"memory budget must be >= 0, got {text!r}")
    total = int(value * _UNITS[unit])
    return total if total > 0 else None


def env_budget_bytes() -> Optional[int]:
    """The process budget named by ``REPRO_MEMORY_BUDGET``, in bytes."""
    return parse_budget(os.environ.get(BUDGET_ENV, ""))


class MemoryBudget:
    """A byte meter with reserve/release accounting and a high-water mark.

    ``limit=None`` means unlimited: every reservation succeeds but usage
    and high-water are still tracked (that is what feeds the observability
    counters when no budget is set).  A child budget forwards every
    reservation to its parent, so one process-wide ceiling bounds the sum
    of all per-operator states.
    """

    def __init__(
        self,
        limit: Optional[int] = None,
        name: str = "budget",
        parent: Optional["MemoryBudget"] = None,
    ):
        if limit is not None and limit < 0:
            raise ReproError(f"memory budget limit must be >= 0, got {limit}")
        self.name = name
        self.limit = limit
        self.parent = parent
        self._used = 0
        self._high_water = 0
        self._spill_signals = 0
        self._lock = threading.Lock()

    def child(self, name: str, limit: Optional[int] = None) -> "MemoryBudget":
        """A per-operator budget drawing from this one."""
        return MemoryBudget(limit=limit, name=name, parent=self)

    def try_reserve(self, nbytes: int) -> bool:
        """Reserve ``nbytes`` if they fit (here and in every ancestor).

        On ``False`` nothing is reserved anywhere — the caller should
        spill and release what it already holds.
        """
        if nbytes < 0:
            raise ReproError(f"cannot reserve negative bytes ({nbytes})")
        with self._lock:
            if self.limit is not None and self._used + nbytes > self.limit:
                self._spill_signals += 1
                return False
            if self.parent is not None and not self.parent.try_reserve(nbytes):
                self._spill_signals += 1
                return False
            self._used += nbytes
            if self._used > self._high_water:
                self._high_water = self._used
            return True

    def release(self, nbytes: int) -> None:
        with self._lock:
            if nbytes > self._used:
                raise ReproError(
                    f"budget {self.name!r}: release of {nbytes} exceeds used {self._used}"
                )
            self._used -= nbytes
        if self.parent is not None:
            self.parent.release(nbytes)

    @property
    def used(self) -> int:
        with self._lock:
            return self._used

    @property
    def high_water(self) -> int:
        with self._lock:
            return self._high_water

    @property
    def spill_signals(self) -> int:
        """How many reservations were refused (each one a degrade event)."""
        with self._lock:
            return self._spill_signals

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "limit": self.limit,
                "used": self._used,
                "high_water": self._high_water,
                "spill_signals": self._spill_signals,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "unlimited" if self.limit is None else f"{self.limit}B"
        return f"MemoryBudget({self.name!r}, limit={cap}, used={self.used}B)"


# -- row sizing ---------------------------------------------------------------

#: Memoized per-scheme overhead: dict + key strings + fixed slot cost.
_SCHEME_OVERHEAD: Dict[frozenset, int] = {}
_SCHEME_OVERHEAD_LIMIT = 1024

#: Flat per-row object overhead (Row instance + counter slot), a constant
#: so the estimator stays cheap; exactness is not required, monotonicity is.
_ROW_FIXED = 96


def row_bytes(values: Mapping[str, object]) -> int:
    """Estimated resident bytes of one row's in-memory representation."""
    scheme = frozenset(values.keys())
    overhead = _SCHEME_OVERHEAD.get(scheme)
    if overhead is None:
        overhead = _ROW_FIXED + sys.getsizeof({}) + sum(
            sys.getsizeof(k) for k in values.keys()
        )
        if len(_SCHEME_OVERHEAD) >= _SCHEME_OVERHEAD_LIMIT:
            _SCHEME_OVERHEAD.clear()
        _SCHEME_OVERHEAD[scheme] = overhead
    return overhead + sum(sys.getsizeof(v) for v in values.values())


# -- the process budget -------------------------------------------------------

_process: Optional[MemoryBudget] = None
_process_lock = threading.Lock()


def process_budget() -> MemoryBudget:
    """The process-wide budget, sized from ``REPRO_MEMORY_BUDGET`` once."""
    global _process
    with _process_lock:
        if _process is None:
            _process = MemoryBudget(limit=env_budget_bytes(), name="process")
        return _process


def reset_process_budget() -> None:
    """Forget the process budget so the next call re-reads the env."""
    global _process
    with _process_lock:
        _process = None
