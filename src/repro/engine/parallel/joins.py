"""Per-partition build/probe kernels and the parallel join driver.

:func:`parallel_counts` is the single entry point for all five physical
join variants (``inner``/``left_outer``/``full_outer``/``semi``/``anti``
— GOJ reduces to ``inner`` plus a serial projection-difference in
:mod:`repro.algebra.goj` and needs nothing here).  It radix-partitions
both inputs by join-key hash (see :mod:`repro.engine.parallel.partition`
for why that is match-preserving), runs one
:func:`run_partition_task` per non-trivial partition on a worker pool,
and merges the per-partition ``Counter`` outputs.

The merge is bag-identical to the serial kernels because the partition
outputs are **disjoint**: every output row embeds its (non-null) key
values, which determine its partition, and null-partition outputs carry
null keys no regular partition can produce.  ``Counter.update`` adds
multiplicities, but the disjointness means no key ever collides — the
merge is a plain union, in any order.

Null-partition rows never probe; their variant-specific fate is
expressed by running the *same* task kernel against an empty opposite
side, which yields exactly the paper's semantics:

=============  ======================  =======================
variant        left null-key rows      right null-key rows
=============  ======================  =======================
inner          dropped                 dropped
left_outer     padded with nulls       dropped
full_outer     padded (left side)      padded (right side)
semi           dropped                 dropped (build only)
anti           kept verbatim           dropped (build only)
=============  ======================  =======================

The probe loop is deliberately lower-level than the serial kernels in
:mod:`repro.algebra.kernels`: partition routing already filtered null
keys, so probes use direct dict access (no per-row null re-checks), the
output row is assembled by fusing the two value dicts and filling a
``Row``'s slots directly (``Row.__new__`` + slot assignment — safe
because ``Row`` is slot-only and its hash contract,
``hash(frozenset(values.items()))``, is reproduced verbatim), and
multiplicity-1 outputs are counted by one batched C-accelerated
``Counter.update(list)`` per task instead of a per-row ``+= 1``.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from repro.algebra.kernels import _residual_true, decompose_join_predicate
from repro.algebra.nulls import NULL
from repro.algebra.predicates import PairView, Predicate
from repro.algebra.relation import Relation
from repro.algebra.tuples import Row
from repro.engine.parallel import partition as _partition
from repro.engine.parallel.budget import env_budget_bytes, process_budget
from repro.engine.parallel.config import ParallelConfig, current_config
from repro.engine.parallel.pool import WorkerPool, shared_pool
from repro.engine.parallel.spill import PartitionBuffer
from repro.observability.spans import maybe_span
from repro.tools import instrumentation
from repro.util.errors import ReproError

#: The five physical variants this driver serves.
VARIANTS = ("inner", "left_outer", "full_outer", "semi", "anti")

#: Task tuple layout (picklable for process pools when the partition
#: sources are plain pair lists):
#: (variant, left_src, right_src, left_keys, right_keys, residual,
#:  left_attrs, right_attrs)
Task = Tuple


def _pairs(src) -> List[Tuple[Row, int]]:
    if isinstance(src, PartitionBuffer):
        return list(src.drain())
    return src


def _build_table(right_pairs, right_keys):
    """key -> [(row, values_dict, multiplicity), ...]; keys are non-null."""
    table: dict = {}
    setdefault = table.setdefault
    if len(right_keys) == 1:
        a = right_keys[0]
        for r2, n2 in right_pairs:
            v2 = r2._values
            setdefault(v2[a], []).append((r2, v2, n2))
    else:
        for r2, n2 in right_pairs:
            v2 = r2._values
            setdefault(tuple(v2[a] for a in right_keys), []).append((r2, v2, n2))
    return table


def _build_split_tables(right_pairs, key):
    """Single-key build for the branch-free probe: unit and weighted sides.

    Multiplicity-1 rows (the overwhelmingly common case) go into
    ``unit[key] = [values_dict, ...]`` so the probe iterates bare dicts —
    no tuple unpacking, no per-pair multiplicity branch.  The rare
    duplicated rows land in ``weighted[key] = [(values_dict, n), ...]``.
    """
    unit: dict = {}
    weighted: dict = {}
    setdefault_u = unit.setdefault
    setdefault_w = weighted.setdefault
    for r2, n2 in right_pairs:
        v2 = r2._values
        if n2 == 1:
            setdefault_u(v2[key], []).append(v2)
        else:
            setdefault_w(v2[key], []).append((v2, n2))
    return unit, weighted


def _emit(values: dict) -> Row:
    """A Row over pre-merged values, filling slots directly.

    Bit-identical to ``Row(values)`` minus the attribute-name validation
    (inputs are rows that already passed it): same ``_values`` dict, same
    ``hash(frozenset(items))`` hash, so rows from this path and from
    ``Row.concat`` compare and hash interchangeably.
    """
    row = Row.__new__(Row)
    row._values = values
    row._hash = hash(frozenset(values.items()))
    return row


#: A task's output: multiplicity-1 rows as a flat list (counted in the
#: parent by one C-accelerated ``Counter.update`` per task) plus the rare
#: weighted rows as explicit ``(row, multiplicity)`` pairs.
TaskResult = Tuple[List[Row], List[Tuple[Row, int]]]


def run_partition_task(task: Task) -> TaskResult:
    """Execute one partition's build/probe.

    Module-level (not a closure) so process pools can pickle it by
    reference.
    """
    variant, left_src, right_src, left_keys, right_keys, residual, left_attrs, right_attrs = task
    left_pairs = _pairs(left_src)
    right_pairs = _pairs(right_src)
    if variant in ("semi", "anti"):
        return _semi_anti_task(left_pairs, right_pairs, left_keys, right_keys, residual, variant == "semi")
    return _join_task(
        variant, left_pairs, right_pairs, left_keys, right_keys, residual, left_attrs, right_attrs
    )


def _join_task(
    variant, left_pairs, right_pairs, left_keys, right_keys, residual, left_attrs, right_attrs
) -> TaskResult:
    unit: List[Row] = []
    weighted: List[Tuple[Row, int]] = []
    append_unit = unit.append
    append_weighted = weighted.append
    single = len(left_keys) == 1
    a = left_keys[0] if single else None
    hash_ = hash
    frozenset_ = frozenset
    new = Row.__new__

    if variant == "inner" and not residual and single:
        # The hottest shape (single-key pure equi-join) gets a branch-free
        # body: no tuple unpacking, no per-pair multiplicity/residual/full
        # checks — duplicated build rows probe through a separate table so
        # the common all-unit loop touches bare value dicts only.
        utable, wtable = (
            _build_split_tables(right_pairs, right_keys[0]) if right_pairs else ({}, {})
        )
        get_unit = utable.get
        get_weighted = wtable.get if wtable else None
        for r1, n1 in left_pairs:
            v1 = r1._values
            key = v1[a]
            bucket = get_unit(key)
            if bucket is not None:
                if n1 == 1:
                    for v2 in bucket:
                        m = v1 | v2
                        row = new(Row)
                        row._values = m
                        row._hash = hash_(frozenset_(m.items()))
                        append_unit(row)
                else:
                    for v2 in bucket:
                        m = v1 | v2
                        row = new(Row)
                        row._values = m
                        row._hash = hash_(frozenset_(m.items()))
                        append_weighted((row, n1))
            if get_weighted is not None:
                wbucket = get_weighted(key)
                if wbucket is not None:
                    for v2, n2 in wbucket:
                        m = v1 | v2
                        row = new(Row)
                        row._values = m
                        row._hash = hash_(frozenset_(m.items()))
                        append_weighted((row, n1 * n2))
        return unit, weighted

    table = _build_table(right_pairs, right_keys) if right_pairs else {}
    get_bucket = table.get

    preserve_left = variant != "inner"
    full = variant == "full_outer"
    left_pad = {attr: NULL for attr in right_attrs} if preserve_left else None
    matched_right: set = set()

    for r1, n1 in left_pairs:
        v1 = r1._values
        bucket = get_bucket(v1[a] if single else tuple(v1[k] for k in left_keys))
        matched = False
        if bucket is not None:
            for r2, v2, n2 in bucket:
                if residual and not _residual_true(residual, PairView(r1, r2)):
                    continue
                matched = True
                if full:
                    matched_right.add(r2)
                m = v1 | v2
                row = new(Row)
                row._values = m
                row._hash = hash_(frozenset_(m.items()))
                if n1 == 1 and n2 == 1:
                    append_unit(row)
                else:
                    append_weighted((row, n1 * n2))
        if preserve_left and not matched:
            m = v1 | left_pad
            row = new(Row)
            row._values = m
            row._hash = hash_(frozenset_(m.items()))
            if n1 == 1:
                append_unit(row)
            else:
                append_weighted((row, n1))

    if full:
        right_pad = {attr: NULL for attr in left_attrs}
        for r2, n2 in right_pairs:
            if r2 not in matched_right:
                m = right_pad | r2._values
                row = new(Row)
                row._values = m
                row._hash = hash_(frozenset_(m.items()))
                if n2 == 1:
                    append_unit(row)
                else:
                    append_weighted((row, n2))
    return unit, weighted


def _semi_anti_task(left_pairs, right_pairs, left_keys, right_keys, residual, want_match) -> TaskResult:
    unit: List[Row] = []
    weighted: List[Tuple[Row, int]] = []
    append_unit = unit.append
    table = _build_table(right_pairs, right_keys) if right_pairs else {}
    get_bucket = table.get
    single = len(left_keys) == 1
    a = left_keys[0] if single else None
    for r1, n1 in left_pairs:
        v1 = r1._values
        bucket = get_bucket(v1[a] if single else tuple(v1[k] for k in left_keys))
        if residual:
            matched = bucket is not None and any(
                _residual_true(residual, PairView(r1, r2)) for r2, _v2, _n2 in bucket
            )
        else:
            matched = bucket is not None
        if matched is want_match:
            if n1 == 1:
                append_unit(r1)
            else:
                weighted.append((r1, n1))
    return unit, weighted


def _task_needed(variant: str, left_rows: int, right_rows: int) -> bool:
    """Can this (possibly half-empty) partition produce output?"""
    if variant == "inner":
        return left_rows > 0 and right_rows > 0
    if variant == "full_outer":
        return left_rows > 0 or right_rows > 0
    return left_rows > 0  # left_outer / semi / anti


def parallel_counts(
    left: Relation,
    right: Relation,
    predicate: Optional[Predicate],
    variant: str,
    config: Optional[ParallelConfig] = None,
    split: Optional[Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[Predicate, ...]]] = None,
) -> Optional[Counter]:
    """Partitioned-parallel output multiplicities, or None when inapplicable.

    ``None`` (no usable equality key, or input below the ``min_rows``
    gate) tells the caller to fall through to the serial kernels / naive
    operators — the same contract :mod:`repro.algebra.kernels` uses.

    The engine's hash join already knows its key split, so it passes
    ``split=(left_keys, right_keys, residual_conjuncts)`` directly and
    ``predicate=None``; the algebra operators pass the predicate and let
    :func:`decompose_join_predicate` find the keys.
    """
    if variant not in VARIANTS:
        raise ReproError(f"unknown parallel join variant {variant!r}")
    cfg = config if config is not None else current_config()
    left_counts = left.counts()
    right_counts = right.counts()
    if len(left_counts) + len(right_counts) < cfg.min_rows:
        return None
    if split is not None:
        left_keys, right_keys, residual = split
    else:
        left_keys, right_keys, residual = decompose_join_predicate(
            predicate, left.scheme, right.scheme
        )
    if not left_keys:
        return None

    budget = process_budget() if env_budget_bytes() is not None else None
    op_budget = budget.child(f"parallel-{variant}") if budget is not None else None
    nparts = cfg.partitions
    left_attrs = tuple(left.scheme)
    right_attrs = tuple(right.scheme)

    with maybe_span(
        f"parallel.{variant}", category="parallel", partitions=nparts
    ) as span:
        left_parts, left_nulls = _partition.partition_counts(
            left_counts, left_keys, nparts, op_budget, "build-left", cfg.spill_dir
        )
        right_parts, right_nulls = _partition.partition_counts(
            right_counts, right_keys, nparts, op_budget, "build-right", cfg.spill_dir
        )

        tasks: List[Task] = []
        skew: List[int] = []
        for i in range(nparts):
            lrows = _partition.partition_rows(left_parts[i])
            rrows = _partition.partition_rows(right_parts[i])
            skew.append(lrows + rrows)
            if _task_needed(variant, lrows, rrows):
                tasks.append(
                    (variant, left_parts[i], right_parts[i], left_keys, right_keys,
                     residual, left_attrs, right_attrs)
                )
            else:
                _partition.discard(left_parts[i])
                _partition.discard(right_parts[i])

        # Null-partition rows never probe; the same kernels applied against
        # an empty opposite side realize drop/pad/keep per variant.
        lnull = _partition.partition_rows(left_nulls)
        rnull = _partition.partition_rows(right_nulls)
        if lnull and variant in ("left_outer", "full_outer", "anti"):
            tasks.append(
                (variant, left_nulls, [], left_keys, right_keys, residual,
                 left_attrs, right_attrs)
            )
        else:
            _partition.discard(left_nulls)
        if rnull and variant == "full_outer":
            tasks.append(
                (variant, [], right_nulls, left_keys, right_keys, residual,
                 left_attrs, right_attrs)
            )
        else:
            _partition.discard(right_nulls)

        pool = cfg.pool
        owned: Optional[WorkerPool] = None
        if pool is None:
            if cfg.workers is not None or cfg.mode != "thread":
                owned = pool = WorkerPool(workers=cfg.workers, mode=cfg.mode, name="join")
            else:
                pool = shared_pool()
        try:
            if pool.mode == "process":
                # Open spill files don't cross process boundaries; drain in
                # the parent (in-memory hand-off is the process-pool deal).
                tasks = [
                    (t[0], _pairs(t[1]), _pairs(t[2]), *t[3:]) for t in tasks
                ]
            results = pool.map(run_partition_task, tasks)
        finally:
            if owned is not None:
                owned.close()

        # Partition outputs are disjoint (see module docstring), so the
        # merge is one batched C-accelerated count per task plus the rare
        # weighted tail; no cross-task collisions are possible.
        out: Counter[Row] = Counter()
        for unit, weighted in results:
            out.update(unit)
            for row, n in weighted:
                out[row] += n

        spills = op_budget.spill_signals if op_budget is not None else 0
        instrumentation.bump("parallel_joins")
        instrumentation.bump("parallel_tasks", len(tasks))
        instrumentation.bump("parallel_partitions", nparts)
        if spills:
            instrumentation.bump("parallel_spills", spills)
        if span is not None:
            span.add("parallel_tasks", len(tasks))
            span.add("null_rows_left", lnull)
            span.add("null_rows_right", rnull)
            span.add("spill_events", spills)
            if op_budget is not None:
                span.add("mem_budget_high_water", op_budget.high_water)
            biggest = max(skew) if skew else 0
            total = sum(skew)
            span.set(
                workers=pool.workers,
                pool_mode=pool.mode,
                partition_rows=",".join(map(str, skew)),
                skew_max_fraction=round(biggest / total, 4) if total else 0.0,
                spilled=bool(spills),
            )
    return out
