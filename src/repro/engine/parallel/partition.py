"""Radix partitioning of relations by join-key hash.

:func:`partition_counts` splits one side of a join into ``npartitions``
regular partitions plus one dedicated **null partition**.  The routing
rule is the whole correctness story of parallel execution under the
paper's 3VL semantics:

* a row whose key columns are all non-null goes to partition
  ``hash(key) % npartitions``.  Equality of key values implies equality
  of hashes (Python's cross-type numeric hashing included: ``1``,
  ``1.0`` and ``True`` hash alike exactly because they compare equal),
  so *any two rows that could join land in the same partition* — the
  per-partition build/probe tasks never miss a match, and a build row
  can only be matched by probes in its own partition, which makes
  "unmatched locally" identical to "unmatched globally" (the property
  full outerjoin's right-padding relies on);
* a row with a null in **any** key column can never satisfy the key
  equality (``NULL = x`` is unknown, unknown does not satisfy), so it is
  routed to the null partition, where the variant-specific padding rules
  of OJ/FOJ/AJ are applied without ever probing.

Partitions are plain ``(row, multiplicity)`` pair lists by default; when
a :class:`~repro.engine.parallel.budget.MemoryBudget` is supplied they
are :class:`~repro.engine.parallel.spill.PartitionBuffer` instances that
degrade to tempfile spill under memory pressure.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple, Union

from repro.algebra.nulls import NULL
from repro.algebra.tuples import Row
from repro.engine.parallel.budget import MemoryBudget
from repro.engine.parallel.spill import PartitionBuffer

#: One partition: an in-memory pair list or a spillable buffer.
Partition = Union[List[Tuple[Row, int]], PartitionBuffer]


def partition_counts(
    counts: Mapping[Row, int],
    keys: Tuple[str, ...],
    npartitions: int,
    budget: Optional[MemoryBudget] = None,
    name: str = "side",
    spill_dir: Optional[str] = None,
) -> Tuple[List[Partition], Partition]:
    """Split ``row -> multiplicity`` into radix partitions + null partition.

    Returns ``(partitions, null_partition)``.  With no budget the
    partitions are plain lists (no per-append locking); with a budget
    each partition is a :class:`PartitionBuffer` charged against it.
    """
    if budget is None:
        return _partition_lists(counts, keys, npartitions)
    return _partition_buffers(counts, keys, npartitions, budget, name, spill_dir)


def _partition_lists(counts, keys, npartitions):
    parts: List[List[Tuple[Row, int]]] = [[] for _ in range(npartitions)]
    nulls: List[Tuple[Row, int]] = []
    appends = [p.append for p in parts]
    if len(keys) == 1:
        a = keys[0]
        for row, n in counts.items():
            v = row._values[a]
            if v is NULL:
                nulls.append((row, n))
            else:
                appends[hash(v) % npartitions]((row, n))
    else:
        for row, n in counts.items():
            values = row._values
            key = tuple(values[a] for a in keys)
            if any(v is NULL for v in key):
                nulls.append((row, n))
            else:
                appends[hash(key) % npartitions]((row, n))
    return parts, nulls


def _partition_buffers(counts, keys, npartitions, budget, name, spill_dir):
    parts: List[PartitionBuffer] = [
        PartitionBuffer(f"{name}-p{i}", budget=budget, spill_dir=spill_dir)
        for i in range(npartitions)
    ]
    nulls = PartitionBuffer(f"{name}-null", budget=budget, spill_dir=spill_dir)
    if len(keys) == 1:
        a = keys[0]
        for row, n in counts.items():
            v = row._values[a]
            if v is NULL:
                nulls.append(row, n)
            else:
                parts[hash(v) % npartitions].append(row, n)
    else:
        for row, n in counts.items():
            values = row._values
            key = tuple(values[a] for a in keys)
            if any(v is NULL for v in key):
                nulls.append(row, n)
            else:
                parts[hash(key) % npartitions].append(row, n)
    return parts, nulls


def partition_rows(partition: Partition) -> int:
    """Total multiplicity held by a partition (list or buffer)."""
    if isinstance(partition, PartitionBuffer):
        return partition.rows
    return sum(n for _, n in partition)


def materialize(partition: Partition) -> List[Tuple[Row, int]]:
    """Pair list of a partition; draining (and closing) buffers."""
    if isinstance(partition, PartitionBuffer):
        return list(partition.drain())
    return partition


def discard(partition: Partition) -> None:
    """Release a partition that will not be consumed."""
    if isinstance(partition, PartitionBuffer):
        partition.close()
