"""The cyclic fast path: sorted tries + Leapfrog Triejoin.

Binary join plans can materialize intermediates far above the final
output on cyclic queries — the triangle query's best binary plan touches
``|R||S|/d`` rows where the output is only ``O(N^1.5)`` (the AGM bound).
:class:`LeapfrogTriejoinOp` joins *variable-at-a-time* instead
(Veldhuizen 2012): every input relation is indexed as a sorted trie
whose key levels follow the :class:`~repro.core.wcoj_order.WcojSpec`'s
global attribute-class order, and each variable is resolved by
*leapfrogging* the participating tries — repeatedly seeking the
smallest-keyed iterator up to the largest current key until all agree —
so no intermediate ever exceeds the fractional-cover bound.

Mechanics worth knowing:

* **Trie keys** are compared through :func:`_sort_key`, which prefixes
  every value with its type name — one total order over mixed-type
  columns without Python 3 cross-type comparisons.
* **3VL**: a row with NULL in any key attribute can never satisfy an
  equality conjunct, so it is excluded from the trie outright (the
  binary hash kernels drop the same rows at probe time).  Likewise a row
  whose same-class attributes disagree is excluded: the query equates
  them.
* **Bag semantics**: trie leaves keep the full duplicate row lists; a
  full variable match emits the cross product of the matched leaves.
* **Caching**: base-table tries are memoized on the table through
  :meth:`~repro.engine.storage.Table.derived`, keyed by the key-level
  layout and invalidated by the table's modification version — the same
  generation discipline as the plan cache and the SQLite oracle
  snapshot.  Filtered inputs get ad-hoc tries (the filter changes the
  row set).
* **Metering**: inputs are always drained through ``op.execute`` so
  retrieval/filter metering matches the other executors even on a trie
  cache hit; the operator reports ``wcoj_seeks`` / ``wcoj_ties`` (and
  trie builds) through its span and the global instrumentation counters.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.algebra.nulls import is_null, satisfied
from repro.algebra.predicates import Predicate, conjunction
from repro.algebra.tuples import Row
from repro.core.wcoj_order import WcojSpec
from repro.engine.batch.columns import ColumnBatch, batches_from_rows
from repro.engine.iterators import Filter, PhysicalOp, SeqScan, TracedOp
from repro.engine.metrics import Metrics
from repro.engine.storage import Storage, Table
from repro.tools import instrumentation
from repro.util.errors import PlanningError
from repro.util.fastpath import batch_size

#: One trie key level: ``(variable, attributes)`` — the attributes of a
#: single relation that the query places in the class ``variable``.
KeyGroups = Tuple[Tuple[str, Tuple[str, ...]], ...]


def _sort_key(value) -> tuple:
    """A totally-ordered proxy for a trie key value.

    Prefixing the type name keeps mixed-type columns sortable (Python 3
    refuses ``3 < "x"``) and keeps ``1`` and ``True`` distinct, so trie
    positions are deterministic regardless of the value mix.
    """
    return (value.__class__.__name__, value)


class _TrieNode:
    """One level of a sorted trie.

    ``values[i]`` / ``wrapped[i]`` are the distinct keys at this level
    (raw and sort-wrapped, kept parallel so :func:`bisect_left` can run
    on the wrapped array).  ``children[i]`` is the next-level node — or,
    at the deepest level, the list of rows carrying that full key vector
    (duplicates preserved: bag semantics).
    """

    __slots__ = ("values", "wrapped", "children")

    def __init__(self, values: list, wrapped: list, children: list):
        self.values = values
        self.wrapped = wrapped
        self.children = children


def _node_of(items: Sequence[tuple], depth: int, levels: int) -> _TrieNode:
    """Build the node at ``depth`` from sorted ``(wrapped, key, rows)`` runs."""
    values: list = []
    wrapped: list = []
    children: list = []
    i, n = 0, len(items)
    while i < n:
        w = items[i][0][depth]
        j = i
        while j < n and items[j][0][depth] == w:
            j += 1
        values.append(items[i][1][depth])
        wrapped.append(w)
        if depth + 1 == levels:
            children.append(items[i][2])  # full key vectors are distinct: j == i+1
        else:
            children.append(_node_of(items[i:j], depth + 1, levels))
        i = j
    return _TrieNode(values, wrapped, children)


class TrieIndex:
    """A sorted trie over one relation's rows under fixed key levels."""

    __slots__ = ("key_groups", "levels", "root", "rows_indexed", "rows_excluded")

    def __init__(
        self,
        key_groups: KeyGroups,
        root: _TrieNode,
        rows_indexed: int,
        rows_excluded: int,
    ):
        self.key_groups = key_groups
        self.levels = len(key_groups)
        self.root = root
        self.rows_indexed = rows_indexed
        self.rows_excluded = rows_excluded

    @classmethod
    def build(cls, rows: Sequence[Row], key_groups: KeyGroups) -> "TrieIndex":
        """Index ``rows`` under ``key_groups`` (one sorted level each).

        Rows with a NULL key attribute, or whose same-class attributes
        disagree, can never join and are excluded up front.
        """
        if not key_groups:
            raise PlanningError("a WCOJ trie needs at least one key level")
        grouped: Dict[tuple, Tuple[tuple, List[Row]]] = {}
        excluded = 0
        for row in rows:
            key: list = []
            usable = True
            for _var, attrs in key_groups:
                values = [row[attr] for attr in attrs]
                first = _sort_key(values[0])
                if any(is_null(v) for v in values) or any(
                    _sort_key(v) != first for v in values[1:]
                ):
                    usable = False
                    break
                key.append(values[0])
            if not usable:
                excluded += 1
                continue
            wkey = tuple(_sort_key(v) for v in key)
            entry = grouped.get(wkey)
            if entry is None:
                grouped[wkey] = (tuple(key), [row])
            else:
                entry[1].append(row)
        items = sorted(
            (wkey, key, leaf) for wkey, (key, leaf) in grouped.items()
        )
        root = (
            _node_of(items, 0, len(key_groups))
            if items
            else _TrieNode([], [], [])
        )
        return cls(key_groups, root, len(rows) - excluded, excluded)

    def cursor(self) -> "TrieCursor":
        return TrieCursor(self.root)


class TrieCursor:
    """Leapfrog-style cursor: ``open``/``up`` move levels, ``next``/``seek``
    move within one, in sorted key order.

    ``next`` and ``seek`` return True when the level is exhausted (the
    leapfrog's at-end signal).  ``seek`` takes a *wrapped* key and never
    moves backwards, so a full leapfrog pass over a level is linear in
    the level plus the seeks' binary-search logs.
    """

    __slots__ = ("_root", "_stack")

    def __init__(self, root: _TrieNode):
        self._root = root
        self._stack: List[list] = []  # [node, position] frames

    @property
    def depth(self) -> int:
        return len(self._stack)

    def open(self) -> bool:
        """Descend into the current key's child level; True if empty."""
        if self._stack:
            node, pos = self._stack[-1]
            child = node.children[pos]
        else:
            child = self._root
        self._stack.append([child, 0])
        return self.at_end()

    def up(self) -> None:
        self._stack.pop()

    def at_end(self) -> bool:
        node, pos = self._stack[-1]
        return pos >= len(node.values)

    def key(self):
        node, pos = self._stack[-1]
        return node.values[pos]

    def wrapped_key(self) -> tuple:
        node, pos = self._stack[-1]
        return node.wrapped[pos]

    def next(self) -> bool:
        """Step to the next key at this level; True at end."""
        frame = self._stack[-1]
        frame[1] += 1
        return frame[1] >= len(frame[0].values)

    def seek(self, wrapped: tuple) -> bool:
        """Jump forward to the first key >= ``wrapped``; True at end."""
        frame = self._stack[-1]
        frame[1] = bisect_left(frame[0].wrapped, wrapped, frame[1])
        return frame[1] >= len(frame[0].values)

    def leaf_rows(self) -> List[Row]:
        """The duplicate-preserving row list under the current full key."""
        node, pos = self._stack[-1]
        return node.children[pos]


def trie_for(table: Table, key_groups: KeyGroups) -> Tuple[TrieIndex, bool]:
    """The table's cached trie for ``key_groups`` (built, True) or (hit, False).

    Cached through :meth:`Table.derived`, so an insert invalidates and
    the next query rebuilds — the generation discipline shared with the
    plan cache and the oracle snapshot.
    """
    built = [False]

    def build() -> TrieIndex:
        built[0] = True
        instrumentation.bump("trie_builds")
        return TrieIndex.build(list(table.scan()), key_groups)

    trie = table.derived(("wcoj-trie", key_groups), build)
    return trie, built[0]


class LeapfrogTriejoinOp(PhysicalOp):
    """N-ary worst-case optimal join over sorted tries.

    ``inputs`` is aligned with ``spec.order`` (one physical child per
    relation).  Execution materializes/indexes every input, then runs
    the leapfrog recursion over ``spec.variables``; a full match emits
    the cross product of the matched leaf row lists (bag semantics),
    post-filtered by the spec's residual non-equality conjuncts.
    """

    batch_native = True

    def __init__(self, spec: WcojSpec, inputs: Tuple[PhysicalOp, ...]):
        if len(inputs) != len(spec.order):
            raise PlanningError(
                f"Leapfrog plan needs one input per relation: "
                f"{len(spec.order)} relations, {len(inputs)} inputs"
            )
        self.spec = spec
        self.inputs = tuple(inputs)
        schema = self.inputs[0].schema
        for op in self.inputs[1:]:
            schema = schema.union(op.schema)
        self.schema = schema
        self._residual: Optional[Predicate] = (
            conjunction(list(spec.residuals)) if spec.residuals else None
        )
        #: Which inputs participate in each global variable, by position.
        self._by_var: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(
                i
                for i, name in enumerate(spec.order)
                if any(var == v for v, _attrs in spec.keys_for(name))
            )
            for var in spec.variables
        )

    def children(self) -> tuple[PhysicalOp, ...]:
        return self.inputs

    def _execute_rows(self, metrics: Metrics) -> Iterator[Row]:
        tries: List[TrieIndex] = []
        total = 0
        builds = 0
        for name, op in zip(self.spec.order, self.inputs):
            # Drain through execute() even when the trie is cached so the
            # retrieval/filter metering matches the other executors.
            rows = list(op.execute(metrics))
            total += len(rows)
            groups = self.spec.keys_for(name)
            inner = op
            while isinstance(inner, TracedOp):
                inner = inner.inner
            if isinstance(inner, SeqScan):
                trie, built = trie_for(inner.table, groups)
            else:
                trie = TrieIndex.build(rows, groups)
                built = True
                instrumentation.bump("trie_builds")
            builds += int(built)
            tries.append(trie)
        if self._span is not None:
            self._span.counters["mem_rows"] = total
            self._span.counters["trie_builds"] = builds

        cursors = [trie.cursor() for trie in tries]
        seeks = 0
        ties = 0
        label = "LeapfrogTriejoin"
        residual = self._residual

        def joined(level: int) -> Iterator[Row]:
            nonlocal seeks, ties
            if level == len(self.spec.variables):
                leaves = [cursor.leaf_rows() for cursor in cursors]
                for combo in itertools.product(*leaves):
                    row = combo[0]
                    for other in combo[1:]:
                        row = row.concat(other)
                    if residual is not None:
                        metrics.evaluated()
                        if not satisfied(residual.evaluate(row)):
                            continue
                    yield row
                return
            active = [cursors[i] for i in self._by_var[level]]
            empty = False
            for cursor in active:
                empty = cursor.open() or empty
            try:
                if empty:
                    return
                active.sort(key=TrieCursor.wrapped_key)
                p, k = 0, len(active)
                x_max = active[-1].wrapped_key()
                while True:
                    cursor = active[p]
                    if cursor.wrapped_key() == x_max:
                        ties += 1
                        yield from joined(level + 1)
                        if cursor.next():
                            return
                    else:
                        seeks += 1
                        if cursor.seek(x_max):
                            return
                    x_max = cursor.wrapped_key()
                    p = (p + 1) % k
            finally:
                for cursor in active:
                    cursor.up()

        try:
            for row in joined(0):
                metrics.emitted(label)
                yield row
        finally:
            if seeks:
                instrumentation.bump("wcoj_seeks", seeks)
            if ties:
                instrumentation.bump("wcoj_ties", ties)
            if self._span is not None:
                self._span.counters["wcoj_seeks"] += seeks
                self._span.counters["wcoj_ties"] += ties

    def execute_batches(self, metrics: Metrics) -> Iterator[ColumnBatch]:
        """Chunk the joined output; inputs already ran their native paths."""
        for batch in batches_from_rows(
            self._execute_rows(metrics), self.schema, batch_size()
        ):
            yield self._emit_batch(batch)

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        head = (
            f"{pad}LeapfrogTriejoin[vars={','.join(self.spec.variables)}, "
            f"rels={len(self.spec.order)}, residuals={len(self.spec.residuals)}]"
        )
        return "\n".join([head] + [op.describe(indent + 2) for op in self.inputs])


def build_wcoj_plan(
    spec: WcojSpec, storage: Storage, filters: Dict[str, List[Predicate]]
) -> LeapfrogTriejoinOp:
    """A Leapfrog Triejoin physical plan: filtered scans under the join op."""
    inputs: List[PhysicalOp] = []
    for node in spec.order:
        op: PhysicalOp = SeqScan(storage[node])
        preds = filters.get(node)
        if preds:
            op = Filter(op, conjunction(list(preds)))
        inputs.append(op)
    return LeapfrogTriejoinOp(spec, tuple(inputs))
