"""Base-table storage with simple statistics.

A deliberately small storage layer: heap tables of :class:`Row` objects,
per-attribute statistics (cardinality, distinct count, min/max) feeding the
optimizer's cardinality model, and named hash indexes
(:mod:`repro.engine.indexes`).  Access always flows through the physical
operators so that every base-tuple retrieval is metered.
"""

from __future__ import annotations

import itertools
import threading
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.algebra.nulls import is_null
from repro.algebra.relation import Database, Relation
from repro.algebra.schema import Schema, SchemaRegistry
from repro.algebra.tuples import Row
from repro.engine.indexes import HashIndex
from repro.util.errors import PlanningError, SchemaError


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one attribute of a table."""

    distinct: int
    nulls: int
    minimum: Optional[Any]
    maximum: Optional[Any]


class Table:
    """A heap table: named, schema'd, with rows and optional hash indexes."""

    def __init__(self, name: str, schema: Schema | Iterable[str], rows: Iterable[Row] = ()):
        self.name = name
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self._rows: List[Row] = []
        self._indexes: Dict[str, HashIndex] = {}
        self._stats: Optional[Dict[str, ColumnStats]] = None
        self._version = 0
        self._derived: Dict[Any, Tuple[int, Any]] = {}
        self._derived_lock = threading.Lock()
        for row in rows:
            self.insert(row)

    @property
    def version(self) -> int:
        """Monotonic data-modification counter (bumped by every insert).

        Derived snapshots — :meth:`Storage.to_database`'s cached oracle
        view in particular — key their validity on it.
        """
        return self._version

    def insert(self, row: Row) -> None:
        if row.scheme != self.schema.attributes:
            raise SchemaError(
                f"row scheme {sorted(row.scheme)} does not match table {self.name!r} "
                f"scheme {sorted(self.schema.attributes)}"
            )
        self._rows.append(row)
        for index in self._indexes.values():
            index.insert(row)
        self._stats = None
        self._version += 1

    @property
    def rows(self) -> List[Row]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterator[Row]:
        """Raw iteration; physical operators wrap this with metering."""
        return iter(self._rows)

    # -- indexes -------------------------------------------------------------

    def create_index(self, attribute: str) -> HashIndex:
        """Build (or return) a hash index on one attribute."""
        if attribute not in self.schema:
            raise SchemaError(f"table {self.name!r} has no attribute {attribute!r}")
        if attribute not in self._indexes:
            index = HashIndex(f"{self.name}({attribute})", attribute)
            for row in self._rows:
                index.insert(row)
            self._indexes[attribute] = index
        return self._indexes[attribute]

    def index_on(self, attribute: str) -> Optional[HashIndex]:
        return self._indexes.get(attribute)

    @property
    def indexed_attributes(self) -> frozenset[str]:
        return frozenset(self._indexes)

    # -- statistics ------------------------------------------------------------

    def stats(self) -> Dict[str, ColumnStats]:
        """Per-column statistics, computed lazily and cached.

        The computation takes no lock: concurrent first callers may both
        compute, but they compute identical immutable dicts and the
        single attribute store is atomic, so readers always see either
        None (and compute) or a complete result — never a partial one.
        """
        if self._stats is None:
            out: Dict[str, ColumnStats] = {}
            for attr in self.schema:
                values = [r[attr] for r in self._rows]
                non_null = [v for v in values if not is_null(v)]
                out[attr] = ColumnStats(
                    distinct=len(set(non_null)),
                    nulls=len(values) - len(non_null),
                    minimum=min(non_null, default=None),
                    maximum=max(non_null, default=None),
                )
            self._stats = out
        return self._stats

    def to_relation(self) -> Relation:
        return Relation(self.schema, self._rows)

    # -- derived structures ----------------------------------------------------

    def derived(self, key: Any, build: "Callable[[], Any]") -> Any:
        """A version-keyed cache slot for structures computed from the rows.

        ``build()`` runs (under the table's derived-structure lock) when
        the slot is empty or the table has been modified since the slot
        was filled — the same generation-keyed invalidation that backs
        :meth:`Storage.to_database`.  Callers must treat the returned
        structure as immutable; the trie indexes of the WCOJ fast path
        are the primary tenant.
        """
        with self._derived_lock:
            hit = self._derived.get(key)
            if hit is not None and hit[0] == self._version:
                return hit[1]
            value = build()
            self._derived[key] = (self._version, value)
            return value


#: Process-unique identity tokens for Storage instances, so that two
#: different storages can never present the same generation (even if
#: their tables happen to share names and version counters).
_storage_ids = itertools.count(1)


class Storage(Mapping[str, Table]):
    """A physical database: tables with disjoint schemes, plus a registry."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._registry = SchemaRegistry()
        self._db_cache: Optional[Database] = None
        self._db_cache_key: Optional[tuple] = None
        self._db_cache_lock = threading.Lock()
        self._storage_id = next(_storage_ids)

    @classmethod
    def from_database(cls, db: Database) -> "Storage":
        """Materialize an algebra-level database into engine storage."""
        storage = cls()
        for name in db:
            rel = db[name]
            storage.add_table(Table(name, rel.schema, list(rel)))
        return storage

    def add_table(self, table: Table) -> Table:
        self._registry.register(table.name, table.schema)
        self._tables[table.name] = table
        return table

    def create_table(
        self, name: str, schema: Iterable[str], rows: Iterable[Mapping[str, Any]] = ()
    ) -> Table:
        return self.add_table(Table(name, Schema(schema), (Row(r) for r in rows)))

    @property
    def registry(self) -> SchemaRegistry:
        return self._registry

    def __getitem__(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise PlanningError(f"unknown table {name!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def generation(self) -> Tuple[int, Tuple[Tuple[str, int], ...]]:
        """A hashable token identifying this storage *instance and state*.

        Composed of the instance's process-unique id and the sorted
        ``(table, version)`` vector, so the token changes whenever a
        table is added or any table's data is modified — and two
        distinct storages never share a token even when their contents
        coincide.  The plan cache (:mod:`repro.optimizer.plancache`)
        stamps every entry with it: a generation mismatch invalidates
        the entry instead of replaying a plan chosen for other
        statistics.
        """
        return (
            self._storage_id,
            tuple((name, table.version) for name, table in sorted(self._tables.items())),
        )

    def to_database(self) -> Database:
        """View the storage as an algebra-level database (for oracles).

        The view is rebuilt only when the storage generation changes —
        the cache key is the (name, version) vector of all tables — so
        repeated oracle checks against unchanged data (the conformance
        harness runs many per storage) do not re-materialize every
        relation.  Relations are immutable; callers share the snapshot
        and must not ``add`` to it.  The rebuild is lock-guarded so
        concurrent queries over one storage share a single snapshot.
        """
        key = tuple((name, table.version) for name, table in sorted(self._tables.items()))
        with self._db_cache_lock:
            if self._db_cache is None or key != self._db_cache_key:
                from repro.tools import instrumentation

                instrumentation.bump("storage_to_database_builds")
                self._db_cache = Database(
                    {name: table.to_relation() for name, table in self._tables.items()}
                )
                self._db_cache_key = key
            return self._db_cache
