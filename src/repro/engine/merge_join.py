"""Sort-merge join: the third classic access path.

Example 1 only needs index nested loops, but a credible engine offers the
standard trio; merge join also gives the test suite an independent
implementation to differentially test against hash join and the algebra
oracle.  Supports the same left-preserving variants as the other joins
(inner, left_outer, semi, anti) over a single equality key; null keys
never match and — for ``left_outer``/``anti`` — surface as preserved rows.
"""

from __future__ import annotations

from collections.abc import Iterator
from time import perf_counter_ns
from typing import List, Optional

from repro.algebra.nulls import is_null, satisfied
from repro.algebra.predicates import PairView, Predicate, TruePredicate
from repro.algebra.tuples import Row, null_row
from repro.engine.iterators import PhysicalOp, _check_join_type
from repro.engine.metrics import Metrics


class MergeJoin(PhysicalOp):
    """Left-preserving sort-merge join on one equality key."""

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        left_key: str,
        right_key: str,
        residual: Optional[Predicate] = None,
        join_type: str = "inner",
    ):
        _check_join_type(join_type)
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual or TruePredicate()
        self.join_type = join_type
        if join_type in ("semi", "anti"):
            self.schema = left.schema
        else:
            self.schema = left.schema.union(right.schema)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def _sorted_non_null(self, rows: List[Row], key: str) -> List[Row]:
        return sorted(
            (r for r in rows if not is_null(r[key])),
            key=lambda r: r[key],
        )

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        span = self._span
        sort_started = perf_counter_ns() if span is not None else 0
        left_rows = list(self.left.execute(metrics))
        right_rows = list(self.right.execute(metrics))
        # Null-keyed left rows never match: for the preserved variants they
        # must still be emitted.
        left_null_keyed = [r for r in left_rows if is_null(r[self.left_key])]
        left_sorted = self._sorted_non_null(left_rows, self.left_key)
        right_sorted = self._sorted_non_null(right_rows, self.right_key)
        if span is not None:
            span.counters["build_ns"] = perf_counter_ns() - sort_started
            span.counters["mem_rows"] = len(left_rows) + len(right_rows)
        padding = null_row(self.right.schema)
        label = f"MergeJoin[{self.join_type}]"

        i = j = 0
        while i < len(left_sorted):
            left_row = left_sorted[i]
            key = left_row[self.left_key]
            # Advance the right cursor to the first candidate >= key.
            while j < len(right_sorted) and right_sorted[j][self.right_key] < key:
                j += 1
            # Collect the group of equal right keys.
            k = j
            matched = False
            while k < len(right_sorted) and right_sorted[k][self.right_key] == key:
                right_row = right_sorted[k]
                metrics.evaluated()
                if satisfied(self.residual.evaluate(PairView(left_row, right_row))):
                    matched = True
                    if self.join_type == "semi":
                        break
                    if self.join_type in ("inner", "left_outer"):
                        metrics.emitted(label)
                        yield left_row.concat(right_row)
                k += 1
            if self.join_type == "left_outer" and not matched:
                metrics.emitted(label)
                yield left_row.concat(padding)
            elif self.join_type == "semi" and matched:
                metrics.emitted(label)
                yield left_row
            elif self.join_type == "anti" and not matched:
                metrics.emitted(label)
                yield left_row
            i += 1

        for left_row in left_null_keyed:
            if self.join_type == "left_outer":
                metrics.emitted(label)
                yield left_row.concat(padding)
            elif self.join_type == "anti":
                metrics.emitted(label)
                yield left_row

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}MergeJoin[{self.join_type}, {self.left_key} = {self.right_key}]\n"
            f"{self.left.describe(indent + 2)}\n{self.right.describe(indent + 2)}"
        )
