"""EXPLAIN / EXPLAIN ANALYZE for physical plans.

``explain`` annotates every operator of a plan with the optimizer's
cardinality estimate; with ``analyze=True`` (or via ``explain_analyze``)
the plan is *executed under a forced tracer* and every operator is
additionally annotated with what actually happened: rows out, wall time,
hash-build/sort timings, index probe hits, materialized row counts, and
the planner's kernel-vs-naive dispatch decision.  This is the
estimate-vs-actual view DBAs use to debug optimizer choices — and it is
how this reproduction shows, per operator, where Example 1's tuple
accounting comes from.

EXPLAIN ANALYZE always traces (an explicit request for actuals overrides
``REPRO_TRACE=0``); plain query execution honours the environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.iterators import PhysicalOp, SeqScan
from repro.engine.storage import Storage
from repro.observability.contract import memory_high_water
from repro.observability.spans import Span, tracing
from repro.util.fastpath import fast_enabled

#: How the planner's operator choice reads in dispatch terms.
_DISPATCH = {
    "HashJoin": "hash-kernel",
    "MergeJoin": "merge-kernel",
    "IndexNestedLoopJoin": "index-kernel",
    "GeneralizedOuterJoinOp": "goj-hash-kernel",
    "NestedLoopJoin": "naive-nested-loop",
    "YannakakisOp": "semijoin-reducer",
    "LeapfrogTriejoinOp": "leapfrog-triejoin",
}

#: Per-operator span counters surfaced in the rendered tree, in order.
#: ``batches_out`` is the number of column batches a batch-native
#: operator emitted (absent on row-path runs and shim-only operators).
_DETAIL_COUNTERS = (
    "index_probes",
    "index_hits",
    "build_buckets",
    "mem_rows",
    "batches_out",
    "reducer_passes",
    "reducer_dropped",
    "trie_builds",
    "wcoj_seeks",
    "wcoj_ties",
)


@dataclass
class ExplainNode:
    """One operator's line in the EXPLAIN output."""

    label: str
    estimated_rows: Optional[float]
    actual_rows: Optional[int]
    children: List["ExplainNode"] = field(default_factory=list)
    #: Wall time of the operator (EXPLAIN ANALYZE only).
    time_ms: Optional[float] = None
    #: Extra per-operator facts: dispatch decision, build time, index hits...
    details: Dict[str, object] = field(default_factory=dict)

    def render(self, indent: int = 0) -> str:
        parts = [self.label]
        if self.estimated_rows is not None:
            parts.append(f"est={self.estimated_rows:.1f}")
        if self.actual_rows is not None:
            parts.append(f"actual={self.actual_rows}")
        if self.time_ms is not None:
            parts.append(f"time={self.time_ms:.3f}ms")
        for key, value in self.details.items():
            parts.append(f"{key}={value}")
        line = " " * indent + "-> " + "  ".join(parts)
        return "\n".join([line] + [c.render(indent + 3) for c in self.children])

    def worst_q_error(self) -> float:
        """Largest estimate/actual discrepancy anywhere in the subtree."""
        worst = 1.0
        if self.estimated_rows is not None and self.actual_rows is not None:
            est = max(self.estimated_rows, 1.0)
            act = max(float(self.actual_rows), 1.0)
            worst = max(est / act, act / est)
        for child in self.children:
            worst = max(worst, child.worst_q_error())
        return worst

    def find(self, fragment: str) -> Optional["ExplainNode"]:
        """First node (pre-order) whose label contains ``fragment``."""
        if fragment in self.label:
            return self
        for child in self.children:
            hit = child.find(fragment)
            if hit is not None:
                return hit
        return None


def _label_of(op: PhysicalOp) -> str:
    return op.span_label()


def _estimate_for(op: PhysicalOp, storage: Storage) -> Optional[float]:
    # Only base scans have an estimate independent of the logical tree; for
    # composite operators the estimator needs the logical expression, which
    # the caller can supply via `explain(expr=...)` — handled in `explain`.
    if isinstance(op, SeqScan):
        return float(len(op.table))
    return None


def explain(
    plan: PhysicalOp,
    storage: Storage,
    expr=None,
    analyze: bool = False,
) -> ExplainNode:
    """Annotate a plan with cardinality estimates.

    With ``analyze=False`` nothing is executed.  When the logical
    expression ``expr`` is supplied, the root estimate comes from
    :class:`~repro.optimizer.cardinality.CardinalityEstimator`; leaf
    scans are estimated from table statistics either way.  With
    ``analyze=True`` this delegates to :func:`explain_analyze`.
    """
    if analyze:
        return explain_analyze(plan, storage, expr=expr)
    root_estimate: Optional[float] = None
    if expr is not None:
        from repro.optimizer.cardinality import CardinalityEstimator

        root_estimate = CardinalityEstimator(storage).estimate_expression(expr).cardinality

    def walk(op: PhysicalOp, is_root: bool) -> ExplainNode:
        estimate = root_estimate if is_root and root_estimate is not None else _estimate_for(op, storage)
        return ExplainNode(
            label=_label_of(op),
            estimated_rows=estimate,
            actual_rows=None,
            children=[walk(child, False) for child in op.children()],
        )

    return walk(plan, True)


def _attach_span(node: ExplainNode, span: Span) -> None:
    """Copy one operator span's actuals onto its ExplainNode (recursively;
    the span tree mirrors the plan tree by construction)."""
    node.actual_rows = span.counters.get("rows_out", 0)
    if span.finished:
        node.time_ms = round(span.duration_ns / 1e6, 6)
    op_name = span.attrs.get("op")
    dispatch = _DISPATCH.get(op_name)
    if dispatch is not None:
        node.details["dispatch"] = dispatch
    if "build_ns" in span.counters:
        node.details["build_ms"] = round(span.counters["build_ns"] / 1e6, 3)
    for key in _DETAIL_COUNTERS:
        if key in span.counters:
            node.details[key] = span.counters[key]
    op_children = [c for c in span.children if c.category == "engine.op"]
    for child_node, child_span in zip(node.children, op_children):
        _attach_span(child_node, child_span)


def explain_analyze(
    plan: PhysicalOp,
    storage: Storage,
    expr=None,
) -> ExplainNode:
    """Run the plan and annotate every operator with actuals.

    Execution happens under a forced tracer, so the annotations are the
    span tree's numbers: actual row counts, per-operator wall time,
    build/probe timings, index hits, and dispatch decisions.
    """
    from repro.engine.executor import execute_plan

    with tracing(enabled=True):
        result = execute_plan(plan)

    annotated = explain(plan, storage, expr=expr)
    root_span = result.trace
    op_spans = [s for s in root_span.children if s.category == "engine.op"]
    if op_spans:
        _attach_span(annotated, op_spans[0])
    annotated.details.setdefault(
        "kernels", "fast" if fast_enabled() else "naive"
    )
    annotated.details.setdefault("mem_high_water_rows", memory_high_water(root_span))
    return annotated
