"""EXPLAIN / EXPLAIN ANALYZE for physical plans.

``explain`` annotates every operator of a plan with the optimizer's
cardinality estimate; ``explain_analyze`` additionally runs the plan and
records the *actual* row counts flowing out of each operator, giving the
estimate-vs-actual view DBAs use to debug optimizer choices — and giving
this reproduction a per-operator view of where the System-R model drifts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.algebra.tuples import Row
from repro.engine.iterators import PhysicalOp, SeqScan
from repro.engine.metrics import Metrics
from repro.engine.storage import Storage


@dataclass
class ExplainNode:
    """One operator's line in the EXPLAIN output."""

    label: str
    estimated_rows: Optional[float]
    actual_rows: Optional[int]
    children: List["ExplainNode"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        parts = [self.label]
        if self.estimated_rows is not None:
            parts.append(f"est={self.estimated_rows:.1f}")
        if self.actual_rows is not None:
            parts.append(f"actual={self.actual_rows}")
        line = " " * indent + "-> " + "  ".join(parts)
        return "\n".join([line] + [c.render(indent + 3) for c in self.children])

    def worst_q_error(self) -> float:
        """Largest estimate/actual discrepancy anywhere in the subtree."""
        worst = 1.0
        if self.estimated_rows is not None and self.actual_rows is not None:
            est = max(self.estimated_rows, 1.0)
            act = max(float(self.actual_rows), 1.0)
            worst = max(est / act, act / est)
        for child in self.children:
            worst = max(worst, child.worst_q_error())
        return worst


class _CountingOp(PhysicalOp):
    """Transparent wrapper that counts the rows an operator emits."""

    def __init__(self, inner: PhysicalOp):
        self.inner = inner
        self.schema = inner.schema
        self.count = 0

    def children(self):
        return self.inner.children()

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        for row in self.inner.execute(metrics):
            self.count += 1
            yield row

    def describe(self, indent: int = 0) -> str:
        return self.inner.describe(indent)


def _label_of(op: PhysicalOp) -> str:
    return op.describe().splitlines()[0].strip()


def _estimate_for(op: PhysicalOp, storage: Storage) -> Optional[float]:
    # Only base scans have an estimate independent of the logical tree; for
    # composite operators the estimator needs the logical expression, which
    # the caller can supply via `explain(expr=...)` — handled in `explain`.
    if isinstance(op, SeqScan):
        return float(len(op.table))
    return None


def explain(
    plan: PhysicalOp,
    storage: Storage,
    expr=None,
) -> ExplainNode:
    """Annotate a plan with cardinality estimates (no execution).

    When the logical expression ``expr`` is supplied, the root estimate
    comes from :class:`~repro.optimizer.cardinality.CardinalityEstimator`;
    leaf scans are estimated from table statistics either way.
    """
    root_estimate: Optional[float] = None
    if expr is not None:
        from repro.optimizer.cardinality import CardinalityEstimator

        root_estimate = CardinalityEstimator(storage).estimate_expression(expr).cardinality

    def walk(op: PhysicalOp, is_root: bool) -> ExplainNode:
        estimate = root_estimate if is_root and root_estimate is not None else _estimate_for(op, storage)
        return ExplainNode(
            label=_label_of(op),
            estimated_rows=estimate,
            actual_rows=None,
            children=[walk(child, False) for child in op.children()],
        )

    return walk(plan, True)


def explain_analyze(
    plan: PhysicalOp,
    storage: Storage,
    expr=None,
) -> ExplainNode:
    """Run the plan and annotate every operator with actual row counts."""

    def wrap(op: PhysicalOp) -> PhysicalOp:
        # Rewrap children first so inner flows are counted too.
        for attr in ("left", "right", "child", "inner"):
            child = getattr(op, attr, None)
            if isinstance(child, PhysicalOp):
                setattr(op, attr, wrap(child))
        return _CountingOp(op)

    counted = wrap(plan)
    metrics = Metrics()
    for _row in counted.execute(metrics):
        pass

    annotated = explain(plan, storage, expr=expr)

    def attach(node: ExplainNode, op: PhysicalOp) -> None:
        if isinstance(op, _CountingOp):
            node.actual_rows = op.count
            inner = op.inner
        else:
            inner = op
        kids = [
            getattr(inner, attr)
            for attr in ("left", "right", "child")
            if isinstance(getattr(inner, attr, None), (PhysicalOp,))
        ]
        for child_node, child_op in zip(node.children, kids):
            attach(child_node, child_op)

    attach(annotated, counted)
    return annotated
