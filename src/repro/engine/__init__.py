"""Instrumented physical execution engine (Example 1's measurement bench)."""

from repro.engine.executor import ExecutionResult, execute, execute_plan, verify_against_algebra
from repro.engine.indexes import HashIndex
from repro.engine.iterators import (
    Filter,
    HashJoin,
    IndexNestedLoopJoin,
    Materialize,
    NestedLoopJoin,
    PhysicalOp,
    ProjectOp,
    SeqScan,
)
from repro.engine.explain import ExplainNode, explain, explain_analyze
from repro.engine.goj_op import GeneralizedOuterJoinOp
from repro.engine.merge_join import MergeJoin
from repro.engine.metrics import Metrics
from repro.engine.planner import Planner, split_equijoin
from repro.engine.storage import ColumnStats, Storage, Table

__all__ = [
    "ColumnStats",
    "ExecutionResult",
    "ExplainNode",
    "Filter",
    "GeneralizedOuterJoinOp",
    "HashIndex",
    "HashJoin",
    "IndexNestedLoopJoin",
    "Materialize",
    "MergeJoin",
    "Metrics",
    "NestedLoopJoin",
    "PhysicalOp",
    "Planner",
    "ProjectOp",
    "SeqScan",
    "Storage",
    "Table",
    "execute",
    "execute_plan",
    "explain",
    "explain_analyze",
    "split_equijoin",
    "verify_against_algebra",
]
