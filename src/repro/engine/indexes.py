"""Hash indexes over base tables.

Example 1's argument presumes "these keys have indexes": evaluating
``(R1 − R2) → R3`` then touches exactly one tuple per probe instead of
scanning ten-million-row tables.  A hash index is all that scenario needs;
lookups return the matching rows, and the *caller* (the physical
index-nested-loop operator) meters each returned row as a base-tuple
retrieval, mirroring how a real executor pays for fetching the row a key
entry points at.

Null keys are never entered into the index and never match a probe —
consistent with SQL equality semantics and with the library's strong
predicates.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.algebra.nulls import is_null
from repro.algebra.tuples import Row


class HashIndex:
    """An equality index on a single attribute."""

    def __init__(self, name: str, attribute: str):
        self.name = name
        self.attribute = attribute
        self._buckets: Dict[Any, List[Row]] = {}

    def insert(self, row: Row) -> None:
        key = row[self.attribute]
        if is_null(key):
            return
        self._buckets.setdefault(key, []).append(row)

    def lookup(self, key: Any) -> List[Row]:
        """Rows whose indexed attribute equals ``key`` (empty for null)."""
        if is_null(key):
            return []
        return self._buckets.get(key, [])

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._buckets.values())

    def distinct_keys(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return f"HashIndex({self.name}, keys={self.distinct_keys()}, entries={len(self)})"
