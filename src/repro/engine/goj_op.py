"""Physical operator for the generalized outerjoin (Section 6.2).

The paper: "As with Generalized-Join, GOJ can be computed by a slightly
modified join algorithm."  This operator is that modification over the
hash-join skeleton: build on the right, probe with the left, track which
S-projections of the left input found a match, and emit one null-padded
witness per unmatched projection at the end.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import repeat
from time import perf_counter_ns
from typing import List, Optional

from repro.algebra.nulls import NULL, is_null, satisfied
from repro.algebra.predicates import PairView, Predicate, TruePredicate
from repro.algebra.schema import Schema
from repro.algebra.tuples import Row, null_row
from repro.engine.batch.columns import ColumnBatch, _fast_row
from repro.engine.batch.kernels import BuildSide, PairColsView
from repro.engine.iterators import PhysicalOp
from repro.engine.metrics import Metrics


class GeneralizedOuterJoinOp(PhysicalOp):
    """Hash-based GOJ: join results plus one padded row per unmatched
    S-projection of the left input."""

    batch_native = True

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        left_key: str,
        right_key: str,
        projection: List[str],
        residual: Optional[Predicate] = None,
    ):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.projection = sorted(projection)
        self.residual = residual or TruePredicate()
        self.schema = left.schema.union(right.schema)
        if not Schema(self.projection).is_subset(left.schema):
            from repro.util.errors import PlanningError

            raise PlanningError("GOJ projection must be a subset of the left schema")

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def _execute_rows(self, metrics: Metrics) -> Iterator[Row]:
        span = self._span
        build_started = perf_counter_ns() if span is not None else 0
        buckets: dict = {}
        build_rows = 0
        for row in self.right.execute(metrics):
            key = row[self.right_key]
            if is_null(key):
                continue
            buckets.setdefault(key, []).append(row)
            build_rows += 1
        if span is not None:
            span.counters["build_ns"] = perf_counter_ns() - build_started
            span.counters["mem_rows"] = build_rows
            span.counters["build_buckets"] = len(buckets)

        label = "GOJ"
        seen_projections: set[Row] = set()
        matched_projections: set[Row] = set()
        for left_row in self.left.execute(metrics):
            proj = left_row.project(self.projection)
            seen_projections.add(proj)
            key = left_row[self.left_key]
            matches = [] if is_null(key) else buckets.get(key, [])
            for right_row in matches:
                metrics.evaluated()
                if satisfied(self.residual.evaluate(PairView(left_row, right_row))):
                    matched_projections.add(proj)
                    metrics.emitted(label)
                    yield left_row.concat(right_row)

        padding = null_row(self.schema.difference(Schema(self.projection)))
        for proj in sorted(seen_projections - matched_projections, key=repr):
            metrics.emitted(label)
            yield proj.concat(padding)

    def execute_batches(self, metrics: Metrics) -> Iterator[ColumnBatch]:
        """Vectorized GOJ: inner-style probe + projection match tracking.

        Projections key on their value tuple in (sorted) projection-attr
        order — equivalent to the row path's ``Row`` set membership — and
        the unmatched witnesses are rebuilt as rows and sorted by ``repr``
        so the tail batch replays the row path's emission order exactly.
        """
        span = self._span
        build_started = perf_counter_ns() if span is not None else 0
        build = BuildSide(
            self.right_key, tuple(sorted(self.right.schema.attributes))
        )
        for batch in self.right.execute_batches(metrics):
            build.add_batch(batch)
        if span is not None:
            span.counters["build_ns"] = perf_counter_ns() - build_started
            span.counters["mem_rows"] = build.bucketed_rows
            span.counters["build_buckets"] = len(build.buckets)

        label = "GOJ"
        proj_attrs = tuple(self.projection)
        residual = (
            None if isinstance(self.residual, TruePredicate) else self.residual
        )
        rcols = build.columns
        buckets_get = build.buckets.get
        seen: set = set()
        matched: set = set()
        for batch in self.left.execute_batches(metrics):
            lcols = batch.columns
            key_col = lcols[self.left_key]
            pcols = [lcols[a] for a in proj_attrs]
            out_l: List[int] = []
            out_r: List[int] = []
            if residual is None:
                extend_l = out_l.extend
                extend_r = out_r.extend
                evaluated = 0
                for i in batch.indices():
                    seen.add(tuple(col[i] for col in pcols))
                    key = key_col[i]
                    bucket = None if key is NULL else buckets_get(key)
                    if bucket:
                        n = len(bucket)
                        evaluated += n
                        extend_r(bucket)
                        extend_l(repeat(i, n))
                        matched.add(tuple(col[i] for col in pcols))
                if evaluated:
                    metrics.evaluated(evaluated)
            else:
                view = PairColsView(lcols, rcols)
                evaluate = residual.evaluate
                for i in batch.indices():
                    proj_key = tuple(col[i] for col in pcols)
                    seen.add(proj_key)
                    key = key_col[i]
                    bucket = None if key is NULL else buckets_get(key)
                    if bucket:
                        metrics.evaluated(len(bucket))
                        view.li = i
                        for j in bucket:
                            view.ri = j
                            if satisfied(evaluate(view)):
                                matched.add(proj_key)
                                out_l.append(i)
                                out_r.append(j)
            if out_l:
                columns = {a: [col[i] for i in out_l] for a, col in lcols.items()}
                for a, col in rcols.items():
                    columns[a] = [col[j] for j in out_r]
                out = ColumnBatch(tuple(sorted(columns)), columns, len(out_l))
                metrics.emitted(label, len(out_l))
                yield self._emit_batch(out)

        unmatched = seen - matched
        if unmatched:
            pad_attrs = tuple(
                sorted(self.schema.difference(Schema(self.projection)).attributes)
            )
            witnesses = sorted(
                (_fast_row(dict(zip(proj_attrs, values))) for values in unmatched),
                key=repr,
            )
            tail = len(witnesses)
            columns = {
                a: [w._values[a] for w in witnesses] for a in proj_attrs
            }
            for a in pad_attrs:
                columns[a] = [NULL] * tail
            out = ColumnBatch(tuple(sorted(columns)), columns, tail)
            metrics.emitted(label, tail)
            yield self._emit_batch(out)

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}GeneralizedOuterJoin[S={self.projection}, "
            f"{self.left_key} = {self.right_key}]\n"
            f"{self.left.describe(indent + 2)}\n{self.right.describe(indent + 2)}"
        )
