"""Physical operator for the generalized outerjoin (Section 6.2).

The paper: "As with Generalized-Join, GOJ can be computed by a slightly
modified join algorithm."  This operator is that modification over the
hash-join skeleton: build on the right, probe with the left, track which
S-projections of the left input found a match, and emit one null-padded
witness per unmatched projection at the end.
"""

from __future__ import annotations

from collections.abc import Iterator
from time import perf_counter_ns
from typing import List, Optional

from repro.algebra.nulls import is_null, satisfied
from repro.algebra.predicates import PairView, Predicate, TruePredicate
from repro.algebra.schema import Schema
from repro.algebra.tuples import Row, null_row
from repro.engine.iterators import PhysicalOp
from repro.engine.metrics import Metrics


class GeneralizedOuterJoinOp(PhysicalOp):
    """Hash-based GOJ: join results plus one padded row per unmatched
    S-projection of the left input."""

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        left_key: str,
        right_key: str,
        projection: List[str],
        residual: Optional[Predicate] = None,
    ):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.projection = sorted(projection)
        self.residual = residual or TruePredicate()
        self.schema = left.schema.union(right.schema)
        if not Schema(self.projection).is_subset(left.schema):
            from repro.util.errors import PlanningError

            raise PlanningError("GOJ projection must be a subset of the left schema")

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        span = self._span
        build_started = perf_counter_ns() if span is not None else 0
        buckets: dict = {}
        build_rows = 0
        for row in self.right.execute(metrics):
            key = row[self.right_key]
            if is_null(key):
                continue
            buckets.setdefault(key, []).append(row)
            build_rows += 1
        if span is not None:
            span.counters["build_ns"] = perf_counter_ns() - build_started
            span.counters["mem_rows"] = build_rows
            span.counters["build_buckets"] = len(buckets)

        label = "GOJ"
        seen_projections: set[Row] = set()
        matched_projections: set[Row] = set()
        for left_row in self.left.execute(metrics):
            proj = left_row.project(self.projection)
            seen_projections.add(proj)
            key = left_row[self.left_key]
            matches = [] if is_null(key) else buckets.get(key, [])
            for right_row in matches:
                metrics.evaluated()
                if satisfied(self.residual.evaluate(PairView(left_row, right_row))):
                    matched_projections.add(proj)
                    metrics.emitted(label)
                    yield left_row.concat(right_row)

        padding = null_row(self.schema.difference(Schema(self.projection)))
        for proj in sorted(seen_projections - matched_projections, key=repr):
            metrics.emitted(label)
            yield proj.concat(padding)

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}GeneralizedOuterJoin[S={self.projection}, "
            f"{self.left_key} = {self.right_key}]\n"
            f"{self.left.describe(indent + 2)}\n{self.right.describe(indent + 2)}"
        )
