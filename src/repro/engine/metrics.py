"""Execution metrics — the paper's own cost currency.

Example 1 argues for outerjoin reordering in terms of *tuples retrieved*
from base relations (``2·10^7 + 1`` versus ``3``).  The engine therefore
instruments every base-table access method with a retrieval counter, per
table and in total, plus auxiliary counters (predicate evaluations, index
probes, rows emitted per operator) that the optimizer's cost model and the
benchmark harness report alongside.

Scoping: every counter lives on the :class:`Metrics` instance of one
execution; when the query runs traced, the executor flushes the totals
into the execution's root span *once* at the end
(:meth:`Metrics.flush_to_span`), so per-query numbers travel with the
trace without any per-row tracing branch in the hot counters.  The only
process-global sink is the advisory
:data:`repro.tools.instrumentation.STATS` counter the benchmark harness
snapshots; the test suite zeroes it between tests (autouse fixture in
``tests/conftest.py``) so it cannot leak across tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.observability.spans import Span
from repro.tools import instrumentation
from repro.util.cancel import CancelToken

#: Poll the cancel token once per this many predicate evaluations — the
#: densest per-row code path, so deadlines fire inside long operator
#: builds (hash build, nested-loop inner sweeps), not just between rows
#: at the plan root.  A power of two keeps the check a cheap mask.
CANCEL_EVAL_MASK = 0x3FF  # every 1024 evaluations


@dataclass
class Metrics:
    """Mutable counters shared by the physical operators of one execution.

    A Metrics instance belongs to exactly one query; it is the one object
    every physical operator touches, which makes it the natural channel
    for *cooperative cancellation*: when ``cancel`` is set, the hot
    counters poll it periodically and raise the token's
    :class:`~repro.util.errors.CancellationError` out of whatever loop
    the query is in.  Queries without a token pay one attribute test.
    """

    tuples_retrieved: Counter = field(default_factory=Counter)
    index_probes: Counter = field(default_factory=Counter)
    predicate_evaluations: int = 0
    rows_emitted: Counter = field(default_factory=Counter)
    #: Optional cooperative-cancellation token for this query.
    cancel: Optional[CancelToken] = None

    def retrieved(self, table: str, count: int = 1) -> None:
        """Record base-table tuples handed to the query (Example 1's metric)."""
        self.tuples_retrieved[table] += count
        instrumentation.bump("tuples_retrieved", count)

    def probed(self, index: str, count: int = 1) -> None:
        self.index_probes[index] += count

    def evaluated(self, count: int = 1) -> None:
        self.predicate_evaluations += count
        if self.cancel is not None and (self.predicate_evaluations & CANCEL_EVAL_MASK) < count:
            self.cancel.check()

    def emitted(self, operator: str, count: int = 1) -> None:
        self.rows_emitted[operator] += count

    def flush_to_span(self, span: Span) -> None:
        """Copy the totals into a span's counters (once, at query end)."""
        counters = span.counters
        counters["tuples_retrieved"] += self.total_retrieved
        counters["predicate_evaluations"] += self.predicate_evaluations
        if self.index_probes:
            counters["index_probes"] += sum(self.index_probes.values())
        if self.rows_emitted:
            counters["rows_emitted"] += sum(self.rows_emitted.values())

    @property
    def total_retrieved(self) -> int:
        """Total base tuples retrieved — the headline number of Example 1."""
        return sum(self.tuples_retrieved.values())

    def summary(self) -> str:
        lines = [f"tuples retrieved: {self.total_retrieved}"]
        for table in sorted(self.tuples_retrieved):
            lines.append(f"  {table}: {self.tuples_retrieved[table]}")
        if self.index_probes:
            lines.append(f"index probes: {sum(self.index_probes.values())}")
        lines.append(f"predicate evaluations: {self.predicate_evaluations}")
        if self.rows_emitted:
            lines.append(f"rows emitted: {sum(self.rows_emitted.values())}")
            for operator in sorted(self.rows_emitted):
                lines.append(f"  {operator}: {self.rows_emitted[operator]}")
        return "\n".join(lines)
