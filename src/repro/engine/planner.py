"""Translate logical expression trees into physical plans.

The planner respects the logical join order exactly — choosing a join
*order* is the optimizer's job (:mod:`repro.optimizer`); choosing access
methods is the planner's.  Per node it picks, in order of preference:

1. **Index nested-loop join** when the inner operand is a base table with
   a hash index on its side of an equi-join conjunct (Example 1's setup);
2. **Hash join** for any equi-join conjunct;
3. **Nested-loop join** otherwise (e.g. Example 1b's ``R1.A > R2.B``).

Outerjoins plan as left-preserved physical joins; a ``RightOuterJoin``
swaps operands first.  Preserved-side semantics never change — only the
access path does.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.algebra.predicates import Comparison, AttrRef, Predicate, conjunction
from repro.algebra.schema import Schema
from repro.core.expressions import (
    Antijoin,
    Expression,
    Join,
    LeftOuterJoin,
    Project,
    Rel,
    Restrict,
    RightAntijoin,
    RightOuterJoin,
    Semijoin,
)
from repro.engine.iterators import (
    Filter,
    HashJoin,
    IndexNestedLoopJoin,
    NestedLoopJoin,
    PhysicalOp,
    ProjectOp,
    SeqScan,
)
from repro.engine.storage import Storage
from repro.util.errors import PlanningError


def split_equijoin(
    predicate: Predicate, left_schema: Schema, right_schema: Schema
) -> Optional[Tuple[str, str, Optional[Predicate]]]:
    """Find an equi-join conjunct ``left_attr = right_attr`` across the sides.

    Returns ``(left_key, right_key, residual_predicate)`` where the
    residual collects every other conjunct, or ``None`` when no usable
    equality conjunct exists.
    """
    equi: Optional[Tuple[str, str]] = None
    residual = []
    for conjunct in predicate.conjuncts():
        if (
            equi is None
            and isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, AttrRef)
            and isinstance(conjunct.right, AttrRef)
        ):
            a, b = conjunct.left.name, conjunct.right.name
            if a in left_schema and b in right_schema:
                equi = (a, b)
                continue
            if b in left_schema and a in right_schema:
                equi = (b, a)
                continue
        residual.append(conjunct)
    if equi is None:
        return None
    left_key, right_key = equi
    residual_pred = conjunction(residual) if residual else None
    return left_key, right_key, residual_pred


#: Logical operator -> (physical join_type, swap_operands).
_JOIN_KINDS = {
    Join: ("inner", False),
    LeftOuterJoin: ("left_outer", False),
    RightOuterJoin: ("left_outer", True),
    Antijoin: ("anti", False),
    RightAntijoin: ("anti", True),
    Semijoin: ("semi", False),
}


class Planner:
    """Stateless physical planner over a :class:`Storage`.

    ``equi_join`` selects the algorithm for equi-joins without a usable
    index: ``"hash"`` (default) or ``"merge"`` — the latter mainly exists
    so the test suite can differentially validate the two implementations
    on identical plans.

    ``parallel=True`` pins equi-joins to :class:`ParallelHashJoin`
    (always partitioned, regardless of ``REPRO_PARALLEL``); the default
    ``False`` emits :class:`HashJoin`, whose *runtime* dispatch follows
    the switch — so plans cached by the optimizer never encode the mode.
    """

    def __init__(self, storage: Storage, equi_join: str = "hash", parallel: bool = False):
        if equi_join not in ("hash", "merge"):
            raise PlanningError(f"unknown equi-join algorithm {equi_join!r}")
        self.storage = storage
        self.equi_join = equi_join
        self.parallel = parallel

    def plan(self, expr: Expression) -> PhysicalOp:
        if isinstance(expr, Rel):
            return SeqScan(self.storage[expr.name])
        if isinstance(expr, Restrict):
            return Filter(self.plan(expr.child), expr.predicate)
        if isinstance(expr, Project):
            return ProjectOp(self.plan(expr.child), expr.attributes, dedup=expr.dedup)
        from repro.core.expressions import GeneralizedOuterJoin

        if type(expr) is GeneralizedOuterJoin:
            return self._plan_goj(expr)
        kind = _JOIN_KINDS.get(type(expr))
        if kind is None:
            raise PlanningError(f"no physical plan for {type(expr).__name__}")
        join_type, swap = kind
        left_expr, right_expr = (expr.right, expr.left) if swap else (expr.left, expr.right)
        return self._plan_join(left_expr, right_expr, expr.predicate, join_type)

    def _plan_join(
        self,
        left_expr: Expression,
        right_expr: Expression,
        predicate: Predicate,
        join_type: str,
    ) -> PhysicalOp:
        left_plan = self.plan(left_expr)
        left_schema = left_plan.schema
        right_schema = self._schema_of(right_expr)
        split = split_equijoin(predicate, left_schema, right_schema)

        # Preference 1: index nested loop against an indexed base table.
        if split is not None and isinstance(right_expr, Rel):
            left_key, right_key, residual = split
            table = self.storage[right_expr.name]
            index = table.index_on(right_key)
            if index is not None:
                return IndexNestedLoopJoin(
                    left_plan, table, index, left_key, residual, join_type
                )

        right_plan = self.plan(right_expr)
        # Preference 2: hash (or merge) join on the equi-key.
        if split is not None:
            left_key, right_key, residual = split
            if self.equi_join == "merge":
                from repro.engine.merge_join import MergeJoin

                return MergeJoin(
                    left_plan, right_plan, left_key, right_key, residual, join_type
                )
            if self.parallel:
                from repro.engine.iterators import ParallelHashJoin

                return ParallelHashJoin(
                    left_plan, right_plan, left_key, right_key, residual, join_type
                )
            return HashJoin(left_plan, right_plan, left_key, right_key, residual, join_type)

        # Fallback: nested loops with the full predicate.
        return NestedLoopJoin(left_plan, right_plan, predicate, join_type)

    def _plan_goj(self, expr) -> PhysicalOp:
        """Plan a generalized outerjoin via the modified hash join."""
        from repro.engine.goj_op import GeneralizedOuterJoinOp

        left_plan = self.plan(expr.left)
        right_plan = self.plan(expr.right)
        split = split_equijoin(expr.predicate, left_plan.schema, right_plan.schema)
        if split is None:
            raise PlanningError(
                "the GOJ physical operator needs an equi-join conjunct "
                "(the paper's 'slightly modified join algorithm' is hash-based)"
            )
        left_key, right_key, residual = split
        return GeneralizedOuterJoinOp(
            left_plan, right_plan, left_key, right_key, sorted(expr.projection), residual
        )

    def _schema_of(self, expr: Expression) -> Schema:
        if isinstance(expr, Rel):
            return self.storage[expr.name].schema
        return expr.scheme(self.storage.registry)
