"""Running physical plans and collecting metrics.

The executor is the meeting point of the theory and the engine: a logical
expression (possibly reordered by :mod:`repro.optimizer`) is planned,
drained, and returned together with the metered costs — which is exactly
how the Example-1 benchmark compares ``R1 − (R2 → R3)`` against
``(R1 − R2) → R3``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.relation import Relation
from repro.core.expressions import Expression
from repro.engine.iterators import PhysicalOp
from repro.engine.metrics import Metrics
from repro.engine.planner import Planner
from repro.engine.storage import Storage


@dataclass
class ExecutionResult:
    """A drained plan: its rows, its costs, and the plan that produced them."""

    relation: Relation
    metrics: Metrics
    plan: PhysicalOp

    @property
    def tuples_retrieved(self) -> int:
        return self.metrics.total_retrieved

    def __str__(self) -> str:
        return (
            f"{len(self.relation)} rows\n{self.plan.describe()}\n{self.metrics.summary()}"
        )


def execute_plan(plan: PhysicalOp) -> ExecutionResult:
    """Drain a physical plan with a fresh metrics sink."""
    metrics = Metrics()
    relation = Relation(plan.schema, plan.execute(metrics))
    return ExecutionResult(relation=relation, metrics=metrics, plan=plan)


def execute(expr: Expression, storage: Storage) -> ExecutionResult:
    """Plan and run a logical expression against the storage."""
    plan = Planner(storage).plan(expr)
    return execute_plan(plan)


def verify_against_algebra(expr: Expression, storage: Storage) -> bool:
    """Cross-check the engine against the algebra-level evaluator.

    The algebra operators are the semantic oracle (they transcribe the
    paper's definitions directly); the engine must agree with them on
    every plan it produces.  Used throughout the integration tests.

    Routed through the conformance harness so the comparison, its skip
    rules, and its instrumentation live in one place; the storage's
    cached oracle view makes repeated checks cheap.
    """
    from repro.conformance.check import cross_check

    result = cross_check(
        expr,
        storage.to_database(),
        executors=("algebra", "engine"),
        storage=storage,
        strict=True,
    )
    return result.ok
