"""Running physical plans and collecting metrics.

The executor is the meeting point of the theory and the engine: a logical
expression (possibly reordered by :mod:`repro.optimizer`) is planned,
drained, and returned together with the metered costs — which is exactly
how the Example-1 benchmark compares ``R1 − (R2 → R3)`` against
``(R1 − R2) → R3``.

When tracing is active (see :mod:`repro.observability`), every execution
produces a ``query.execute`` span carrying the query's metric totals; at
*full* detail (``REPRO_TRACE=1`` or a forced tracer, e.g. EXPLAIN
ANALYZE) the span's children additionally mirror the physical plan:
per-operator rows in/out, wall time, build/probe timings, index hits,
and a memory high-water estimate.  The ambient default (``REPRO_TRACE``
unset) records phase-level spans only, so tracing adds no per-row work.
The trace is observational either way — plans, results, and Metrics are
bit-identical with tracing off (``REPRO_TRACE=0``), which
``tests/test_explain.py`` asserts byte-level.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.relation import Relation
from repro.algebra.tuples import Row
from repro.core.expressions import Expression
from repro.engine.iterators import PhysicalOp, trace_plan, untrace_plan
from repro.engine.metrics import Metrics
from repro.engine.planner import Planner
from repro.engine.storage import Storage
from repro.observability.spans import Span, current_tracer, maybe_span
from repro.util.cancel import CancelToken
from repro.util.fastpath import shard_enabled

#: Poll the cancel token once per this many rows drained at the plan root
#: (in addition to the denser evaluation-count polling inside Metrics).
CANCEL_ROW_MASK = 0x3F  # every 64 rows


@dataclass
class ExecutionResult:
    """A drained plan: its rows, its costs, and the plan that produced them."""

    relation: Relation
    metrics: Metrics
    plan: PhysicalOp
    #: Root span of the traced execution (None when tracing is off).
    trace: Optional[Span] = field(default=None, repr=False)

    @property
    def tuples_retrieved(self) -> int:
        return self.metrics.total_retrieved

    def __str__(self) -> str:
        return (
            f"{len(self.relation)} rows\n{self.plan.describe()}\n{self.metrics.summary()}"
        )


def _drain(rows: Iterator[Row], cancel: Optional[CancelToken]) -> Iterator[Row]:
    """Pass rows through, polling the cancel token every few rows.

    Cancellation is cooperative: the raise unwinds through the operator
    generators' ``finally`` blocks, so traced spans still finish and no
    operator is left mid-step.  Build-heavy phases that emit no rows for
    a long time are covered by the denser poll in ``Metrics.evaluated``.
    """
    if cancel is None:
        yield from rows
        return
    cancel.check()
    n = 0
    for row in rows:
        n += 1
        if not (n & CANCEL_ROW_MASK):
            cancel.check()
        yield row
    cancel.check()


def execute_plan(plan: PhysicalOp, cancel: Optional[CancelToken] = None) -> ExecutionResult:
    """Drain a physical plan with a fresh metrics sink.

    Traced when a tracer is active: the plan tree is transparently
    wrapped for per-operator metering and restored afterwards.  When a
    ``cancel`` token is given, the drain loop (and the per-query metrics
    sink) polls it and raises its ``CancellationError`` cooperatively.
    """
    metrics = Metrics(cancel=cancel)
    tracer = current_tracer()
    if tracer is None:
        relation = Relation(plan.schema, _drain(plan.execute(metrics), cancel))
        return ExecutionResult(relation=relation, metrics=metrics, plan=plan)

    with tracer.span("query.execute", category="engine") as root:
        if tracer.trace_operators:
            wrapped, undo = trace_plan(plan, root)
            try:
                relation = Relation(plan.schema, _drain(wrapped.execute(metrics), cancel))
            finally:
                untrace_plan(undo)
        else:
            relation = Relation(plan.schema, _drain(plan.execute(metrics), cancel))
        metrics.flush_to_span(root)
        root.set(rows=len(relation))
    return ExecutionResult(relation=relation, metrics=metrics, plan=plan, trace=root)


def execute(
    expr: Expression, storage: Storage, cancel: Optional[CancelToken] = None
) -> ExecutionResult:
    """Plan and run a logical expression against the storage.

    Planning is reentrant (the planner is stateless over an immutable
    expression) and every execution gets its own plan tree and metrics
    sink, so concurrent ``execute`` calls over one storage share no
    mutable state — the property :mod:`repro.service` builds on.

    When ``REPRO_SHARD`` (or a :func:`~repro.util.fastpath.shard_mode`
    override) is on, co-partitionable expressions dispatch to the
    process-sharded evaluator; with the switch off — the default — the
    shard machinery is never consulted and this function is
    byte-identical to a build without it.
    """
    if shard_enabled():
        from repro.engine.shard.executor import execute_sharded, plan_sharded

        sharded = plan_sharded(expr, storage)
        if sharded is not None:
            return execute_sharded(sharded, cancel=cancel)
    with maybe_span("query.plan", category="engine") as span:
        plan = Planner(storage).plan(expr)
        if span is not None:
            span.set(plan=plan.span_label())
    return execute_plan(plan, cancel=cancel)


def verify_against_algebra(expr: Expression, storage: Storage) -> bool:
    """Cross-check the engine against the algebra-level evaluator.

    The algebra operators are the semantic oracle (they transcribe the
    paper's definitions directly); the engine must agree with them on
    every plan it produces.  Used throughout the integration tests.

    Routed through the conformance harness so the comparison, its skip
    rules, and its instrumentation live in one place; the storage's
    cached oracle view makes repeated checks cheap.
    """
    from repro.conformance.check import cross_check

    result = cross_check(
        expr,
        storage.to_database(),
        executors=("algebra", "engine"),
        storage=storage,
        strict=True,
    )
    return result.ok
