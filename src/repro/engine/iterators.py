"""Physical operators (iterator model) with metered base access.

Every operator exposes ``execute(metrics)`` returning an iterator of rows
and a ``schema`` describing its output.  Join operators preserve their
*left* input for the outer/semi/anti variants; the planner performs any
operand swapping (e.g. a ``RightOuterJoin`` logical node runs as a
left-preserving physical join with swapped children).

Retrieval metering follows Example 1's accounting:

* a sequential scan retrieves every row of its table;
* an index nested-loop join retrieves exactly the rows its probes return;
* intermediate results live in memory and are never re-counted.

Tracing: when an execution is traced, :func:`trace_plan` wraps every
operator in a transparent :class:`TracedOp` that meters its open/next/
close lifecycle — ``rows_out`` (rows it yielded), ``rows_in`` credited to
its consumer, and wall-time per operator — into a span tree mirroring the
plan (category ``engine.op``).  Operators additionally report their own
internals (hash-build time, index hits, materialized row counts) through
``self._span``, which the wrapper assigns; untraced runs leave ``_span``
None and skip all accounting.

Vectorized execution: operators with a batch-native implementation
(``batch_native = True``: scan, filter, project, hash join) expose
``execute_batches(metrics)`` yielding
:class:`~repro.engine.batch.ColumnBatch` chunks; every other operator
inherits a row->batch shim so a batch consumer can pull from any child.
``execute()`` on a native operator flattens its own batches back to rows
when :func:`~repro.util.fastpath.batch_enabled` says so, which keeps the
iterator interface — and everything built on it (EXPLAIN ANALYZE, span
tracing, the executor, conformance tiers) — working unchanged.  Batch
kernels replay the row path's emission order and ``Metrics`` totals
exactly, so the two modes are byte-identical; only the per-call
granularity (and speed) differs.
"""

from __future__ import annotations

from time import perf_counter_ns
from collections.abc import Iterator
from typing import List, Optional, Tuple

from repro.observability.spans import Span

from repro.algebra.nulls import satisfied
from repro.algebra.predicates import PairView, Predicate, TruePredicate
from repro.algebra.relation import Relation
from repro.algebra.schema import Schema
from repro.algebra.tuples import Row, null_row
from repro.engine.batch.columns import (
    ColumnBatch,
    batches_from_rows,
    rows_from_batches,
)
from repro.engine.batch.kernels import BatchHashJoiner, BuildSide, compile_filter
from repro.engine.indexes import HashIndex
from repro.engine.metrics import Metrics
from repro.engine.storage import Table
from repro.tools import instrumentation
from repro.util.errors import PlanningError
from repro.util.fastpath import batch_enabled, batch_size

#: Join variants supported by the physical operators.
JOIN_TYPES = ("inner", "left_outer", "semi", "anti")


class PhysicalOp:
    """Base class for all physical operators."""

    schema: Schema

    #: Span assigned by :func:`trace_plan` for fine-grained accounting
    #: (build timings, index hits, materialized rows); None when untraced.
    _span: Optional[Span] = None

    #: True on operators with a vectorized ``execute_batches``; the base
    #: ``execute`` only routes through the batch path for these (routing a
    #: shim-only operator through it would just round-trip rows).
    batch_native: bool = False

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        """Row iterator over the operator's output.

        Batch-native operators honor the ``REPRO_BATCH`` switch here:
        they run vectorized and flatten their batches through the
        row-compat adapter.  Everything downstream sees the same rows in
        the same order either way.
        """
        if self.batch_native and batch_enabled():
            return rows_from_batches(self.execute_batches(metrics))
        return self._execute_rows(metrics)

    def _execute_rows(self, metrics: Metrics) -> Iterator[Row]:
        """The row-at-a-time implementation (the differential baseline)."""
        raise NotImplementedError

    def execute_batches(self, metrics: Metrics) -> Iterator[ColumnBatch]:
        """Batch iterator over the operator's output.

        The default is the row->batch shim: correctness for free, no
        vectorized speedup.  Native operators override this.
        """
        return batches_from_rows(self.execute(metrics), self.schema, batch_size())

    def open_batches(self, metrics: Optional[Metrics] = None) -> "BatchPull":
        """A pull-style batch cursor (``next_batch()``) over this operator."""
        return BatchPull(self.execute_batches(metrics or Metrics()))

    def _emit_batch(self, batch: ColumnBatch) -> ColumnBatch:
        """Account one emitted batch (instrumentation + span counters)."""
        instrumentation.bump("batches_emitted")
        instrumentation.bump("batch_rows", batch.num_rows)
        if self._span is not None:
            self._span.counters["batches_out"] += 1
        return batch

    def span_label(self) -> str:
        """One-line operator label used for spans and EXPLAIN output."""
        return self.describe().splitlines()[0].strip()

    def describe(self, indent: int = 0) -> str:
        """Multi-line plan rendering (EXPLAIN-style)."""
        raise NotImplementedError

    def children(self) -> tuple["PhysicalOp", ...]:
        return ()

    def run(self, metrics: Optional[Metrics] = None) -> Relation:
        """Drain the operator into a relation (convenience for tests)."""
        metrics = metrics or Metrics()
        return Relation(self.schema, self.execute(metrics))


class BatchPull:
    """Thin batch-pull adapter: ``next_batch()`` until None.

    The demand-driven face of ``execute_batches`` for consumers that want
    explicit cursor control (the parallel executor's drain loops, tests)
    rather than a ``for`` loop over the generator.
    """

    __slots__ = ("_it",)

    def __init__(self, batches: Iterator[ColumnBatch]):
        self._it = batches

    def next_batch(self) -> Optional[ColumnBatch]:
        """The next non-exhausted batch, or None at end of stream."""
        return next(self._it, None)

    def __iter__(self) -> Iterator[ColumnBatch]:
        return self._it

    def close(self) -> None:
        close = getattr(self._it, "close", None)
        if close is not None:
            close()


def _check_join_type(join_type: str) -> None:
    if join_type not in JOIN_TYPES:
        raise PlanningError(f"unknown join type {join_type!r}; expected one of {JOIN_TYPES}")


class SeqScan(PhysicalOp):
    """Full scan of a base table; every row is a metered retrieval."""

    batch_native = True

    def __init__(self, table: Table):
        self.table = table
        self.schema = table.schema

    def _execute_rows(self, metrics: Metrics) -> Iterator[Row]:
        for row in self.table.scan():
            metrics.retrieved(self.table.name)
            yield row

    def execute_batches(self, metrics: Metrics) -> Iterator[ColumnBatch]:
        """Columnarize the table a slice at a time.

        Retrieval metering is bumped per chunk with the chunk's row count
        — the same total, the same table, as the per-row path.
        """
        size = batch_size()
        rows = self.table.rows
        attrs = tuple(sorted(self.schema.attributes))
        name = self.table.name
        for start in range(0, len(rows), size):
            chunk = rows[start : start + size]
            metrics.retrieved(name, len(chunk))
            yield self._emit_batch(ColumnBatch.from_rows(attrs, chunk))

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"SeqScan({self.table.name})"


class Filter(PhysicalOp):
    """Selection on top of any child operator."""

    batch_native = True

    def __init__(self, child: PhysicalOp, predicate: Predicate):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def _execute_rows(self, metrics: Metrics) -> Iterator[Row]:
        for row in self.child.execute(metrics):
            metrics.evaluated()
            if satisfied(self.predicate.evaluate(row)):
                yield row

    def execute_batches(self, metrics: Metrics) -> Iterator[ColumnBatch]:
        """Run the compiled filter kernel, narrowing selection vectors.

        Surviving rows are a zero-copy selection over the child's batch;
        batches filtered to zero rows are dropped (the row path yields
        nothing for them either).
        """
        kernel = compile_filter(self.predicate)
        for batch in self.child.execute_batches(metrics):
            alive = batch.num_rows
            if alive:
                metrics.evaluated(alive)
            selection = kernel.apply(batch)
            if selection:
                yield self._emit_batch(batch.with_selection(selection))

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Filter[{self.predicate!r}]\n{self.child.describe(indent + 2)}"


class ProjectOp(PhysicalOp):
    """Projection; optional duplicate elimination."""

    batch_native = True

    def __init__(self, child: PhysicalOp, attributes, dedup: bool = False):
        self.child = child
        self.attributes = sorted(attributes)
        self.dedup = dedup
        self.schema = Schema(self.attributes)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def _execute_rows(self, metrics: Metrics) -> Iterator[Row]:
        seen = set() if self.dedup else None
        for row in self.child.execute(metrics):
            out = row.project(self.attributes)
            if seen is not None:
                if out in seen:
                    continue
                seen.add(out)
            yield out

    def execute_batches(self, metrics: Metrics) -> Iterator[ColumnBatch]:
        """Column-slice projection; dedup keys on value tuples.

        Without dedup the output batch *shares* the child's column lists
        (a pure scheme restriction).  With dedup, rows key on their value
        tuple in fixed attribute order — equivalent to ``Row`` equality,
        which compares the same values under the same attributes — and
        first occurrence wins, matching the row path's emission order.
        """
        attrs = self.attributes
        seen = set() if self.dedup else None
        for batch in self.child.execute_batches(metrics):
            projected = batch.project(attrs)
            if seen is None:
                if projected.num_rows:
                    yield self._emit_batch(projected)
                continue
            cols = [projected.columns[a] for a in projected.attrs]
            selection: List[int] = []
            keep = selection.append
            add = seen.add
            for i in projected.indices():
                key = tuple(col[i] for col in cols)
                if key not in seen:
                    add(key)
                    keep(i)
            if selection:
                yield self._emit_batch(projected.with_selection(selection))

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Project[{self.attributes}]\n{self.child.describe(indent + 2)}"


class Materialize(PhysicalOp):
    """Buffer a child's output; re-iteration does not re-pay retrievals."""

    def __init__(self, child: PhysicalOp):
        self.child = child
        self.schema = child.schema
        self._cache: Optional[List[Row]] = None

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def _execute_rows(self, metrics: Metrics) -> Iterator[Row]:
        if self._cache is None:
            self._cache = list(self.child.execute(metrics))
            if self._span is not None:
                self._span.counters["mem_rows"] = len(self._cache)
        return iter(self._cache)

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Materialize\n{self.child.describe(indent + 2)}"


class NestedLoopJoin(PhysicalOp):
    """Left-preserving nested-loop join over arbitrary predicates.

    The right input is materialized once (intermediate results are memory
    resident, per the module-level accounting rules), so base retrievals
    are paid exactly once per input.
    """

    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, predicate: Predicate, join_type: str = "inner"
    ):
        _check_join_type(join_type)
        self.left = left
        self.right = right
        self.predicate = predicate
        self.join_type = join_type
        if join_type in ("semi", "anti"):
            self.schema = left.schema
        else:
            self.schema = left.schema.union(right.schema)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def _execute_rows(self, metrics: Metrics) -> Iterator[Row]:
        inner_rows = list(self.right.execute(metrics))
        if self._span is not None:
            self._span.counters["mem_rows"] = len(inner_rows)
        padding = null_row(self.right.schema)
        label = f"NLJ[{self.join_type}]"
        for outer_row in self.left.execute(metrics):
            matched = False
            for inner_row in inner_rows:
                metrics.evaluated()
                if satisfied(self.predicate.evaluate(PairView(outer_row, inner_row))):
                    matched = True
                    if self.join_type == "semi":
                        break
                    if self.join_type in ("inner", "left_outer"):
                        metrics.emitted(label)
                        yield outer_row.concat(inner_row)
            if self.join_type == "left_outer" and not matched:
                metrics.emitted(label)
                yield outer_row.concat(padding)
            elif self.join_type == "semi" and matched:
                metrics.emitted(label)
                yield outer_row
            elif self.join_type == "anti" and not matched:
                metrics.emitted(label)
                yield outer_row

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}NestedLoopJoin[{self.join_type}, {self.predicate!r}]\n"
            f"{self.left.describe(indent + 2)}\n{self.right.describe(indent + 2)}"
        )


class IndexNestedLoopJoin(PhysicalOp):
    """Probe a base table's hash index once per outer row.

    This is Example 1's fast path: joining a one-row outer against an
    indexed ten-million-row table retrieves one tuple instead of ten
    million.  Only the rows the index returns are metered as retrieved.
    """

    def __init__(
        self,
        left: PhysicalOp,
        table: Table,
        index: HashIndex,
        outer_key: str,
        residual: Optional[Predicate] = None,
        join_type: str = "inner",
    ):
        _check_join_type(join_type)
        self.left = left
        self.table = table
        self.index = index
        self.outer_key = outer_key
        self.residual = residual or TruePredicate()
        self.join_type = join_type
        if join_type in ("semi", "anti"):
            self.schema = left.schema
        else:
            self.schema = left.schema.union(table.schema)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left,)

    def _execute_rows(self, metrics: Metrics) -> Iterator[Row]:
        padding = null_row(self.table.schema)
        label = f"INLJ[{self.join_type}]"
        span = self._span
        for outer_row in self.left.execute(metrics):
            metrics.probed(self.index.name)
            matches = self.index.lookup(outer_row[self.outer_key])
            if span is not None:
                span.counters["index_probes"] += 1
                span.counters["index_hits"] += len(matches)
            matched = False
            for inner_row in matches:
                metrics.retrieved(self.table.name)
                metrics.evaluated()
                if satisfied(self.residual.evaluate(PairView(outer_row, inner_row))):
                    matched = True
                    if self.join_type == "semi":
                        break
                    if self.join_type in ("inner", "left_outer"):
                        metrics.emitted(label)
                        yield outer_row.concat(inner_row)
            if self.join_type == "left_outer" and not matched:
                metrics.emitted(label)
                yield outer_row.concat(padding)
            elif self.join_type == "semi" and matched:
                metrics.emitted(label)
                yield outer_row
            elif self.join_type == "anti" and not matched:
                metrics.emitted(label)
                yield outer_row

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}IndexNLJ[{self.join_type}, {self.outer_key} -> {self.index.name}]\n"
            f"{self.left.describe(indent + 2)}"
        )


class HashJoin(PhysicalOp):
    """Equi-join: build on the right input, probe with the left (preserved).

    ``left_key``/``right_key`` are single equi-join attributes; additional
    conjuncts go into ``residual``.  Null keys never match, as in the
    algebra layer.

    Dispatch is parallel-aware: when
    :func:`repro.util.fastpath.parallel_enabled` is on, ``execute``
    routes through :func:`repro.engine.parallel.parallel_counts` — both
    inputs are drained, radix-partitioned (null keys to the dedicated
    null partition), joined per partition on the worker pool, and the
    merged bag is emitted.  The decision is taken at execution time, not
    planning time, so cached plans stay valid across mode changes; the
    span attr ``dispatch`` records which path ran.
    """

    batch_native = True

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        left_key: str,
        right_key: str,
        residual: Optional[Predicate] = None,
        join_type: str = "inner",
    ):
        _check_join_type(join_type)
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual or TruePredicate()
        self.join_type = join_type
        if join_type in ("semi", "anti"):
            self.schema = left.schema
        else:
            self.schema = left.schema.union(right.schema)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def execute_batches(self, metrics: Metrics) -> Iterator[ColumnBatch]:
        """Vectorized build/probe; one output batch per probe batch.

        Both children are consumed batch-at-a-time (non-native children
        arrive through the shim).  Span counters (``build_ns``,
        ``mem_rows`` = bucketed build rows, ``build_buckets``), metric
        totals and labels, and the emission order all match the row path
        exactly.  The parallel dispatch also honors batching: children
        drain vectorized, and the merged bag is re-chunked into batches.
        """
        if self._use_parallel():
            for batch in batches_from_rows(
                self._execute_parallel(metrics), self.schema, batch_size()
            ):
                yield self._emit_batch(batch)
            return
        span = self._span
        build_started = perf_counter_ns() if span is not None else 0
        build = BuildSide(
            self.right_key, tuple(sorted(self.right.schema.attributes))
        )
        for batch in self.right.execute_batches(metrics):
            build.add_batch(batch)
        if span is not None:
            span.counters["build_ns"] = perf_counter_ns() - build_started
            span.counters["mem_rows"] = build.bucketed_rows
            span.counters["build_buckets"] = len(build.buckets)
        joiner = BatchHashJoiner(
            build,
            self.left_key,
            self.join_type,
            self.residual,
            metrics,
            f"HashJoin[{self.join_type}]",
        )
        for batch in self.left.execute_batches(metrics):
            out = joiner.probe(batch)
            if out is not None:
                yield self._emit_batch(out)

    def _use_parallel(self) -> bool:
        from repro.util.fastpath import parallel_enabled

        return parallel_enabled()

    def _execute_parallel(self, metrics: Metrics) -> Iterator[Row]:
        """Drain both inputs, join partition-parallel, emit the merged bag.

        Children are consumed exactly once (their retrieval metering and
        traced rows_out/rows_in accounting are unchanged); output rows
        are emitted with their bag multiplicity.  Emission order follows
        the merged counter rather than probe order — downstream algebra
        is bag-semantic, so no consumer may rely on row order.
        """
        from collections import Counter as _Counter
        from dataclasses import replace

        from repro.algebra.relation import Relation
        from repro.engine.parallel import current_config, parallel_counts

        span = self._span
        left_counts: _Counter = _Counter()
        for row in self.left.execute(metrics):
            left_counts[row] += 1
        right_counts: _Counter = _Counter()
        for row in self.right.execute(metrics):
            right_counts[row] += 1
        if span is not None:
            span.counters["mem_rows"] = sum(right_counts.values())
            span.set(dispatch="parallel")
        residual = (
            ()
            if isinstance(self.residual, TruePredicate)
            else tuple(self.residual.conjuncts())
        )
        # The inputs are already drained, so the small-input gate has
        # nothing left to save — run partitioned unconditionally.
        out = parallel_counts(
            Relation._adopt_counts(self.left.schema, left_counts),
            Relation._adopt_counts(self.right.schema, right_counts),
            None,
            self.join_type,
            config=replace(current_config(), min_rows=0),
            split=((self.left_key,), (self.right_key,), residual),
        )
        label = f"ParallelHashJoin[{self.join_type}]"
        for row, n in out.items():
            for _ in range(n):
                metrics.emitted(label)
                yield row

    def _execute_rows(self, metrics: Metrics) -> Iterator[Row]:
        from repro.algebra.nulls import is_null

        if self._use_parallel():
            yield from self._execute_parallel(metrics)
            return
        span = self._span
        build_started = perf_counter_ns() if span is not None else 0
        buckets: dict = {}
        build_rows = 0
        for row in self.right.execute(metrics):
            key = row[self.right_key]
            if is_null(key):
                continue
            buckets.setdefault(key, []).append(row)
            build_rows += 1
        if span is not None:
            span.counters["build_ns"] = perf_counter_ns() - build_started
            span.counters["mem_rows"] = build_rows
            span.counters["build_buckets"] = len(buckets)
        padding = null_row(self.right.schema)
        label = f"HashJoin[{self.join_type}]"
        for outer_row in self.left.execute(metrics):
            key = outer_row[self.left_key]
            matches = [] if is_null(key) else buckets.get(key, [])
            matched = False
            for inner_row in matches:
                metrics.evaluated()
                if satisfied(self.residual.evaluate(PairView(outer_row, inner_row))):
                    matched = True
                    if self.join_type == "semi":
                        break
                    if self.join_type in ("inner", "left_outer"):
                        metrics.emitted(label)
                        yield outer_row.concat(inner_row)
            if self.join_type == "left_outer" and not matched:
                metrics.emitted(label)
                yield outer_row.concat(padding)
            elif self.join_type == "semi" and matched:
                metrics.emitted(label)
                yield outer_row
            elif self.join_type == "anti" and not matched:
                metrics.emitted(label)
                yield outer_row

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}HashJoin[{self.join_type}, {self.left_key} = {self.right_key}]\n"
            f"{self.left.describe(indent + 2)}\n{self.right.describe(indent + 2)}"
        )


class ParallelHashJoin(HashJoin):
    """A hash join pinned to the morsel-driven partitioned path.

    Identical to :class:`HashJoin` except dispatch: this operator always
    runs partition-parallel regardless of the ``REPRO_PARALLEL`` switch.
    The planner emits it when constructed with ``parallel=True``; the
    default planner keeps emitting :class:`HashJoin`, whose runtime
    dispatch honors the switch without invalidating cached plans.
    """

    def _use_parallel(self) -> bool:
        return True

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}ParallelHashJoin[{self.join_type}, {self.left_key} = {self.right_key}]\n"
            f"{self.left.describe(indent + 2)}\n{self.right.describe(indent + 2)}"
        )


# ---------------------------------------------------------------------------
# Tracing wrappers
# ---------------------------------------------------------------------------

#: Attributes through which operators hold child operators.
_CHILD_ATTRS = ("left", "right", "child")


class TracedOp(PhysicalOp):
    """Transparent wrapper metering one operator's open/next/close cycle.

    The wrapper owns the operator's span: it begins it on open (first
    pull), counts every yielded row (``rows_out``), credits the consumer's
    ``rows_in``, and finishes the span on close.  Before closing it force-
    closes any still-live child generators so that abandoned subtrees
    (semi/anti short-circuits) finalize *inside* the parent's interval —
    the nesting half of the metrics contract depends on this ordering.
    """

    def __init__(self, inner: PhysicalOp, span: Span, parent_span: Optional[Span]):
        self.inner = inner
        self.span = span
        self.parent_span = parent_span
        self.schema = inner.schema
        self.child_wrappers: List["TracedOp"] = []
        #: Still-open generators (row or batch) handed to consumers.
        self._live: List[Iterator] = []

    def children(self) -> tuple[PhysicalOp, ...]:
        return self.inner.children()

    def describe(self, indent: int = 0) -> str:
        return self.inner.describe(indent)

    def span_label(self) -> str:
        return self.inner.span_label()

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        gen = self._meter(metrics)
        self._live.append(gen)
        return gen

    def execute_batches(self, metrics: Metrics) -> Iterator[ColumnBatch]:
        """Meter the inner operator's batch stream.

        Row accounting (``rows_out``/``rows_in``) is bumped per batch
        with the batch's row count — same totals as the per-row metering,
        two orders of magnitude fewer counter touches.  Batch-level
        counters (``batches_out``) belong to the *inner* operator's
        ``_emit_batch`` on the shared span, so nothing double-counts.
        """
        gen = self._meter_batches(metrics)
        self._live.append(gen)
        return gen

    def _meter(self, metrics: Metrics) -> Iterator[Row]:
        span = self.span
        span.begin()
        rows = 0
        try:
            for row in self.inner.execute(metrics):
                rows += 1
                yield row
        finally:
            for wrapper in self.child_wrappers:
                wrapper.close_live()
            span.counters["rows_out"] += rows
            if self.parent_span is not None:
                self.parent_span.counters["rows_in"] += rows
            span.finish()

    def _meter_batches(self, metrics: Metrics) -> Iterator[ColumnBatch]:
        span = self.span
        span.begin()
        rows = 0
        try:
            for batch in self.inner.execute_batches(metrics):
                rows += batch.num_rows
                yield batch
        finally:
            for wrapper in self.child_wrappers:
                wrapper.close_live()
            span.counters["rows_out"] += rows
            if self.parent_span is not None:
                self.parent_span.counters["rows_in"] += rows
            span.finish()

    def close_live(self) -> None:
        """Close any generators still open on this wrapper (and, through
        their ``finally`` blocks, on the whole subtree beneath it)."""
        live, self._live = self._live, []
        for gen in live:
            gen.close()


def trace_plan(plan: PhysicalOp, parent_span: Span) -> Tuple[PhysicalOp, "list"]:
    """Wrap every operator of ``plan`` in a :class:`TracedOp`.

    Builds a span tree mirroring the plan under ``parent_span`` and
    returns ``(wrapped_root, undo_log)``; pass the undo log to
    :func:`untrace_plan` to restore the original tree afterwards (plans
    are reusable objects — tracing must not permanently rewire them).
    """
    undo: List[Tuple[PhysicalOp, str, PhysicalOp]] = []

    def wrap(op: PhysicalOp, parent: Span) -> TracedOp:
        span = parent.child(op.span_label(), category="engine.op")
        span.set(op=type(op).__name__)
        wrapper = TracedOp(op, span, parent)
        undo.append((op, "_span", op._span))
        op._span = span
        for attr in _CHILD_ATTRS:
            child = getattr(op, attr, None)
            if isinstance(child, PhysicalOp):
                child_wrapper = wrap(child, span)
                child_wrapper.parent_span = span
                wrapper.child_wrappers.append(child_wrapper)
                undo.append((op, attr, child))
                setattr(op, attr, child_wrapper)
        inputs = getattr(op, "inputs", None)
        if isinstance(inputs, tuple) and inputs and all(
            isinstance(c, PhysicalOp) for c in inputs
        ):
            wrapped_inputs = []
            for child in inputs:
                child_wrapper = wrap(child, span)
                child_wrapper.parent_span = span
                wrapper.child_wrappers.append(child_wrapper)
                wrapped_inputs.append(child_wrapper)
            undo.append((op, "inputs", inputs))
            op.inputs = tuple(wrapped_inputs)
        return wrapper

    return wrap(plan, parent_span), undo


def untrace_plan(undo: "list") -> None:
    """Undo the rewiring performed by :func:`trace_plan`."""
    for op, attr, value in reversed(undo):
        if attr == "_span":
            if value is None and "_span" not in op.__dict__:
                continue
            op._span = value
        else:
            setattr(op, attr, value)
