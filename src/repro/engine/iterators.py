"""Physical operators (iterator model) with metered base access.

Every operator exposes ``execute(metrics)`` returning an iterator of rows
and a ``schema`` describing its output.  Join operators preserve their
*left* input for the outer/semi/anti variants; the planner performs any
operand swapping (e.g. a ``RightOuterJoin`` logical node runs as a
left-preserving physical join with swapped children).

Retrieval metering follows Example 1's accounting:

* a sequential scan retrieves every row of its table;
* an index nested-loop join retrieves exactly the rows its probes return;
* intermediate results live in memory and are never re-counted.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import List, Optional

from repro.algebra.nulls import satisfied
from repro.algebra.predicates import PairView, Predicate, TruePredicate
from repro.algebra.relation import Relation
from repro.algebra.schema import Schema
from repro.algebra.tuples import Row, null_row
from repro.engine.indexes import HashIndex
from repro.engine.metrics import Metrics
from repro.engine.storage import Table
from repro.util.errors import PlanningError

#: Join variants supported by the physical operators.
JOIN_TYPES = ("inner", "left_outer", "semi", "anti")


class PhysicalOp:
    """Base class for all physical operators."""

    schema: Schema

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        """Multi-line plan rendering (EXPLAIN-style)."""
        raise NotImplementedError

    def children(self) -> tuple["PhysicalOp", ...]:
        return ()

    def run(self, metrics: Optional[Metrics] = None) -> Relation:
        """Drain the operator into a relation (convenience for tests)."""
        metrics = metrics or Metrics()
        return Relation(self.schema, self.execute(metrics))


def _check_join_type(join_type: str) -> None:
    if join_type not in JOIN_TYPES:
        raise PlanningError(f"unknown join type {join_type!r}; expected one of {JOIN_TYPES}")


class SeqScan(PhysicalOp):
    """Full scan of a base table; every row is a metered retrieval."""

    def __init__(self, table: Table):
        self.table = table
        self.schema = table.schema

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        for row in self.table.scan():
            metrics.retrieved(self.table.name)
            yield row

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"SeqScan({self.table.name})"


class Filter(PhysicalOp):
    """Selection on top of any child operator."""

    def __init__(self, child: PhysicalOp, predicate: Predicate):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        for row in self.child.execute(metrics):
            metrics.evaluated()
            if satisfied(self.predicate.evaluate(row)):
                yield row

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Filter[{self.predicate!r}]\n{self.child.describe(indent + 2)}"


class ProjectOp(PhysicalOp):
    """Projection; optional duplicate elimination."""

    def __init__(self, child: PhysicalOp, attributes, dedup: bool = False):
        self.child = child
        self.attributes = sorted(attributes)
        self.dedup = dedup
        self.schema = Schema(self.attributes)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        seen = set() if self.dedup else None
        for row in self.child.execute(metrics):
            out = row.project(self.attributes)
            if seen is not None:
                if out in seen:
                    continue
                seen.add(out)
            yield out

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Project[{self.attributes}]\n{self.child.describe(indent + 2)}"


class Materialize(PhysicalOp):
    """Buffer a child's output; re-iteration does not re-pay retrievals."""

    def __init__(self, child: PhysicalOp):
        self.child = child
        self.schema = child.schema
        self._cache: Optional[List[Row]] = None

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        if self._cache is None:
            self._cache = list(self.child.execute(metrics))
        return iter(self._cache)

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Materialize\n{self.child.describe(indent + 2)}"


class NestedLoopJoin(PhysicalOp):
    """Left-preserving nested-loop join over arbitrary predicates.

    The right input is materialized once (intermediate results are memory
    resident, per the module-level accounting rules), so base retrievals
    are paid exactly once per input.
    """

    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, predicate: Predicate, join_type: str = "inner"
    ):
        _check_join_type(join_type)
        self.left = left
        self.right = right
        self.predicate = predicate
        self.join_type = join_type
        if join_type in ("semi", "anti"):
            self.schema = left.schema
        else:
            self.schema = left.schema.union(right.schema)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        inner_rows = list(self.right.execute(metrics))
        padding = null_row(self.right.schema)
        label = f"NLJ[{self.join_type}]"
        for outer_row in self.left.execute(metrics):
            matched = False
            for inner_row in inner_rows:
                metrics.evaluated()
                if satisfied(self.predicate.evaluate(PairView(outer_row, inner_row))):
                    matched = True
                    if self.join_type == "semi":
                        break
                    if self.join_type in ("inner", "left_outer"):
                        metrics.emitted(label)
                        yield outer_row.concat(inner_row)
            if self.join_type == "left_outer" and not matched:
                metrics.emitted(label)
                yield outer_row.concat(padding)
            elif self.join_type == "semi" and matched:
                metrics.emitted(label)
                yield outer_row
            elif self.join_type == "anti" and not matched:
                metrics.emitted(label)
                yield outer_row

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}NestedLoopJoin[{self.join_type}, {self.predicate!r}]\n"
            f"{self.left.describe(indent + 2)}\n{self.right.describe(indent + 2)}"
        )


class IndexNestedLoopJoin(PhysicalOp):
    """Probe a base table's hash index once per outer row.

    This is Example 1's fast path: joining a one-row outer against an
    indexed ten-million-row table retrieves one tuple instead of ten
    million.  Only the rows the index returns are metered as retrieved.
    """

    def __init__(
        self,
        left: PhysicalOp,
        table: Table,
        index: HashIndex,
        outer_key: str,
        residual: Optional[Predicate] = None,
        join_type: str = "inner",
    ):
        _check_join_type(join_type)
        self.left = left
        self.table = table
        self.index = index
        self.outer_key = outer_key
        self.residual = residual or TruePredicate()
        self.join_type = join_type
        if join_type in ("semi", "anti"):
            self.schema = left.schema
        else:
            self.schema = left.schema.union(table.schema)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left,)

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        padding = null_row(self.table.schema)
        label = f"INLJ[{self.join_type}]"
        for outer_row in self.left.execute(metrics):
            metrics.probed(self.index.name)
            matches = self.index.lookup(outer_row[self.outer_key])
            matched = False
            for inner_row in matches:
                metrics.retrieved(self.table.name)
                metrics.evaluated()
                if satisfied(self.residual.evaluate(PairView(outer_row, inner_row))):
                    matched = True
                    if self.join_type == "semi":
                        break
                    if self.join_type in ("inner", "left_outer"):
                        metrics.emitted(label)
                        yield outer_row.concat(inner_row)
            if self.join_type == "left_outer" and not matched:
                metrics.emitted(label)
                yield outer_row.concat(padding)
            elif self.join_type == "semi" and matched:
                metrics.emitted(label)
                yield outer_row
            elif self.join_type == "anti" and not matched:
                metrics.emitted(label)
                yield outer_row

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}IndexNLJ[{self.join_type}, {self.outer_key} -> {self.index.name}]\n"
            f"{self.left.describe(indent + 2)}"
        )


class HashJoin(PhysicalOp):
    """Equi-join: build on the right input, probe with the left (preserved).

    ``left_key``/``right_key`` are single equi-join attributes; additional
    conjuncts go into ``residual``.  Null keys never match, as in the
    algebra layer.
    """

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        left_key: str,
        right_key: str,
        residual: Optional[Predicate] = None,
        join_type: str = "inner",
    ):
        _check_join_type(join_type)
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual or TruePredicate()
        self.join_type = join_type
        if join_type in ("semi", "anti"):
            self.schema = left.schema
        else:
            self.schema = left.schema.union(right.schema)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def execute(self, metrics: Metrics) -> Iterator[Row]:
        from repro.algebra.nulls import is_null

        buckets: dict = {}
        for row in self.right.execute(metrics):
            key = row[self.right_key]
            if is_null(key):
                continue
            buckets.setdefault(key, []).append(row)
        padding = null_row(self.right.schema)
        label = f"HashJoin[{self.join_type}]"
        for outer_row in self.left.execute(metrics):
            key = outer_row[self.left_key]
            matches = [] if is_null(key) else buckets.get(key, [])
            matched = False
            for inner_row in matches:
                metrics.evaluated()
                if satisfied(self.residual.evaluate(PairView(outer_row, inner_row))):
                    matched = True
                    if self.join_type == "semi":
                        break
                    if self.join_type in ("inner", "left_outer"):
                        metrics.emitted(label)
                        yield outer_row.concat(inner_row)
            if self.join_type == "left_outer" and not matched:
                metrics.emitted(label)
                yield outer_row.concat(padding)
            elif self.join_type == "semi" and matched:
                metrics.emitted(label)
                yield outer_row
            elif self.join_type == "anti" and not matched:
                metrics.emitted(label)
                yield outer_row

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}HashJoin[{self.join_type}, {self.left_key} = {self.right_key}]\n"
            f"{self.left.describe(indent + 2)}\n{self.right.describe(indent + 2)}"
        )
