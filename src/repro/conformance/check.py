"""Executor tiers and the differential cross-checker.

One logical query, many evaluators.  Each *tier* is an independent route
from an expression tree to a bag of rows:

======================  =====================================================
tier                    route
======================  =====================================================
``"naive"``             algebra operators with the fast kernels forced OFF —
                        the nested-loop transcription of the paper (oracle)
``"kernels"``           algebra operators with the fast kernels forced ON
``"algebra"``           algebra operators in whatever mode is active
``"engine"``            physical planner + iterators, hash equi-joins
``"engine-merge"``      physical planner + iterators, merge equi-joins
``"sqlite"``            transpiled SQL on stdlib sqlite3 (external oracle)
``"parallel"``          algebra operators dispatched through the
                        morsel-driven partitioned executor
                        (:mod:`repro.engine.parallel`), pinned to
                        ``workers=2, partitions=3, min_rows=0`` for
                        deterministic small-input coverage
``"batch"``             physical planner + iterators with vectorized
                        columnar execution forced ON
                        (:mod:`repro.engine.batch`), batch size pinned
                        to 2 so small inputs still cross chunk
                        boundaries; the plain ``engine`` tier pins batch
                        execution OFF so the row-at-a-time path remains
                        an independent baseline
``"yannakakis"``        the acyclic fast path: every maximal
                        join/outerjoin subtree runs as a GYO join tree
                        through the full semijoin reducer
                        (:mod:`repro.engine.yannakakis`); wrapper
                        operators (restrict/project/union/FOJ/semi/
                        anti/GOJ) evaluate via the algebra layer.
                        Declines (skips) when a core subtree has no
                        safe join tree — cyclic class hypergraph, or an
                        outerjoin graph outside Theorem 1
``"wcoj"``              the cyclic fast path: every maximal *pure-join*
                        subtree with a genuinely cyclic class
                        hypergraph runs as a Leapfrog Triejoin over
                        sorted tries (:mod:`repro.engine.wcoj`);
                        wrapper/outerjoin operators evaluate via the
                        algebra layer on the recursed children.
                        Declines (skips) when no core is cyclic —
                        acyclic graphs belong to Yannakakis/DP, and
                        outerjoins never enter a cyclic core
``"backend:sqlite"``    join-order *hinting* through the persistent
                        :mod:`repro.backends` SQLite backend: every
                        maximal hintable core (Rel/Restrict/Join/
                        LOJ/ROJ trees) runs as explicitly nested
                        ``CROSS JOIN`` SQL in the written order —
                        independent of the ``sqlite`` tier, which
                        lowers to nested subqueries that SQLite's
                        optimizer reorders freely.  Declines when no
                        multi-relation core is hintable
``"backend:duckdb"``    the full expression transpiled and run natively
                        on DuckDB — a second real engine; skipped
                        cleanly when the optional wheel is absent
======================  =====================================================

:func:`cross_check` runs a query through any subset of tiers and demands
pairwise bag-equality of the results (pairwise equality is checked
against the first tier that ran; equality is transitive).  Tiers that
*cannot* run a query — the planner has no physical operator for
``FullOuterJoin``/``Union``, the transpiler refuses opaque predicates —
are recorded as skipped rather than failed, unless ``strict=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.algebra.comparison import RelationDiff, bag_equal, explain_difference
from repro.algebra.relation import Database, Relation
from repro.core.expressions import Expression, FullOuterJoin, Union
from repro.observability.spans import maybe_span
from repro.tools import instrumentation
from repro.util.errors import PlanningError, ReproError
from repro.util.fastpath import kernel_mode

#: Every known tier, in oracle-first order (the first tier that runs
#: becomes the comparison baseline, so the semantic oracle leads).
EXECUTOR_TIERS: Tuple[str, ...] = (
    "naive",
    "kernels",
    "algebra",
    "engine",
    "engine-merge",
    "sqlite",
    "parallel",
    "batch",
    "yannakakis",
    "wcoj",
    "shard",
    "backend:sqlite",
    "backend:duckdb",
)

_ENGINE_TIERS = frozenset({"engine", "engine-merge", "batch"})

#: Tiers that evaluate through :class:`~repro.engine.storage.Storage`
#: (and hence benefit from a shared instance across many checks).
_STORAGE_TIERS = _ENGINE_TIERS | {"yannakakis", "wcoj"}


def supported_executors(
    expr: Expression, executors: Tuple[str, ...] = EXECUTOR_TIERS
) -> Tuple[str, ...]:
    """Drop tiers that statically cannot run this expression.

    The physical planner has no operator for the two-sided outerjoin or
    the padded union, so the engine tiers are excluded when either
    appears.  (GOJ *is* plannable, but only with an equi-join conjunct;
    that case is caught dynamically and reported as a skip.)
    """
    has_unplannable = any(
        isinstance(node, (FullOuterJoin, Union)) for _path, node in expr.nodes()
    )
    if not has_unplannable:
        return tuple(executors)
    return tuple(e for e in executors if e not in _ENGINE_TIERS)


def run_executor(
    name: str,
    expr: Expression,
    db: Database,
    storage=None,
    oracle=None,
) -> Relation:
    """Evaluate ``expr`` on one tier.

    ``storage`` (for the engine tiers) and ``oracle`` (a live
    :class:`~repro.conformance.sqlite_oracle.SQLiteOracle`) may be passed
    in to amortize setup across many calls; both are derived from ``db``
    on demand otherwise.
    """
    if name == "naive":
        with kernel_mode(False):
            return expr.eval(db)
    if name == "kernels":
        from repro.algebra.kernels import small_input_limit

        # Zero the cutoff: on the tiny relations the fuzzer generates the
        # kernels would otherwise decline and fall back to the naive path,
        # making this tier a silent duplicate of "naive".
        with kernel_mode(True), small_input_limit(0):
            return expr.eval(db)
    if name == "algebra":
        return expr.eval(db)
    if name == "parallel":
        from repro.engine.parallel.config import using_config
        from repro.util.fastpath import parallel_mode

        # Odd partition count on purpose: uneven buckets exercise the
        # skew/merge path; min_rows=0 defeats the small-input gate so the
        # fuzzer's tiny relations actually take the partitioned route.
        with parallel_mode(True), using_config(workers=2, partitions=3, min_rows=0):
            return expr.eval(db)
    if name in _ENGINE_TIERS:
        from repro.engine.executor import execute_plan
        from repro.engine.planner import Planner
        from repro.engine.storage import Storage
        from repro.util.fastpath import batch_mode, batch_sized

        if storage is None:
            storage = Storage.from_database(db)
        algo = "merge" if name == "engine-merge" else "hash"
        plan = Planner(storage, equi_join=algo).plan(expr)
        if name == "batch":
            # Batch size 2 on purpose: the fuzzer's tiny relations then
            # still span several batches, exercising chunk boundaries,
            # zero-row selections, and cross-batch dedup/build state.
            with batch_mode(True), batch_sized(2):
                return execute_plan(plan).relation
        # The row path is this tier's whole point: pin batching off so
        # "engine"/"engine-merge" stay independent of the batch kernels.
        with batch_mode(False):
            return execute_plan(plan).relation
    if name == "sqlite":
        from repro.conformance.sqlite_oracle import SQLiteOracle

        if oracle is not None:
            return oracle.evaluate(expr)
        with SQLiteOracle(db) as own:
            return own.evaluate(expr)
    if name == "yannakakis":
        from repro.engine.storage import Storage

        if storage is None:
            storage = Storage.from_database(db)
        return _run_yannakakis(expr, db, storage)
    if name == "wcoj":
        from repro.engine.storage import Storage

        if storage is None:
            storage = Storage.from_database(db)
        return _run_wcoj(expr, db, storage)
    if name == "shard":
        return _run_shard(expr, db)
    if name.startswith("backend:"):
        return _run_backend_tier(name.split(":", 1)[1], expr, db)
    raise PlanningError(f"unknown executor tier {name!r}")


def _recurse_with_cores(tier: str, expr: Expression, db: Database, is_core, run_core):
    """Shared wrapper recursion of the fast-path tiers.

    Maximal subtrees satisfying ``is_core`` evaluate through the tier's
    fast path (``run_core``); every other operator evaluates via the
    algebra layer on the recursed children, so a tier only ever vouches
    for the fragment its fast path actually ran.
    """
    from repro.algebra import operators as ops
    from repro.algebra.goj import generalized_outerjoin
    from repro.core.expressions import (
        Antijoin,
        GeneralizedOuterJoin,
        Join,
        LeftOuterJoin,
        Project,
        Rel,
        Restrict,
        RightAntijoin,
        RightOuterJoin,
        Semijoin,
    )

    def recurse(node: Expression) -> Relation:
        if isinstance(node, Rel):
            return node.eval(db)
        if is_core(node):
            return run_core(node)
        if isinstance(node, Join):
            return ops.join(recurse(node.left), recurse(node.right), node.predicate)
        if isinstance(node, LeftOuterJoin):
            return ops.outerjoin(recurse(node.left), recurse(node.right), node.predicate)
        if isinstance(node, RightOuterJoin):
            return ops.outerjoin(recurse(node.right), recurse(node.left), node.predicate)
        if isinstance(node, FullOuterJoin):
            return ops.full_outerjoin(
                recurse(node.left), recurse(node.right), node.predicate
            )
        if isinstance(node, Semijoin):
            return ops.semijoin(recurse(node.left), recurse(node.right), node.predicate)
        if isinstance(node, Antijoin):
            return ops.antijoin(recurse(node.left), recurse(node.right), node.predicate)
        if isinstance(node, RightAntijoin):
            return ops.antijoin(recurse(node.right), recurse(node.left), node.predicate)
        if isinstance(node, GeneralizedOuterJoin):
            return generalized_outerjoin(
                recurse(node.left), recurse(node.right), node.predicate, node.projection
            )
        if isinstance(node, Restrict):
            return ops.restrict(recurse(node.child), node.predicate)
        if isinstance(node, Project):
            return ops.project(
                recurse(node.child), sorted(node.attributes), dedup=node.dedup
            )
        if isinstance(node, Union):
            return ops.union_padded(recurse(node.left), recurse(node.right))
        raise PlanningError(f"{tier} tier cannot evaluate {type(node).__name__}")

    return recurse(expr)


#: Lazily-created worker pool for the ``shard`` tier, pinned to a tiny
#: deterministic geometry (2 processes, 3 shards — odd on purpose, like
#: the parallel tier's partition count, so uneven shards and the
#: null-rides-on-shard-0 rule are exercised on every case).  Persistent
#: across checks: spawning processes per fuzz case would dominate runtime.
_SHARD_TIER_POOL = None


def _shard_tier_pool():
    global _SHARD_TIER_POOL
    if _SHARD_TIER_POOL is None or _SHARD_TIER_POOL.closed:
        from repro.engine.shard.pool import ShardPool

        _SHARD_TIER_POOL = ShardPool(workers=2, name="conformance-shard")
    return _SHARD_TIER_POOL


def _run_shard(expr: Expression, db: Database) -> Relation:
    """Evaluate with every maximal co-partitionable core process-sharded.

    A *core* here is a tree of Rel/Restrict and the single-attribute-class
    join operators (:data:`repro.engine.shard.executor._CORE_BINARY`) that
    :func:`~repro.engine.shard.executor.shard_spec_of` accepts — each such
    core is hash-sharded across worker processes and merged by
    multiplicity sum.  Dedup projections and padded unions do not
    distribute over the shard partition, so they stay wrappers.  Raises
    :class:`PlanningError` — a cross-check *skip* — when no core is
    co-partitionable, so the tier never silently duplicates the algebra
    tier.
    """
    from repro.core.expressions import (
        Antijoin,
        Join,
        LeftOuterJoin,
        Rel,
        Restrict,
        RightAntijoin,
        RightOuterJoin,
        Semijoin,
    )
    from repro.engine.shard.executor import shard_spec_of, sharded_counts

    registry = db.registry
    took_fast_path = [False]
    core_binary = (
        Join,
        LeftOuterJoin,
        RightOuterJoin,
        FullOuterJoin,
        Semijoin,
        Antijoin,
        RightAntijoin,
    )

    def structural(node: Expression) -> bool:
        if isinstance(node, Rel):
            return True
        if isinstance(node, Restrict):
            return structural(node.child)
        if isinstance(node, core_binary):
            return structural(node.left) and structural(node.right)
        return False

    def is_core(node: Expression) -> bool:
        return structural(node) and shard_spec_of(node, registry) is not None

    def run_core(node: Expression) -> Relation:
        took_fast_path[0] = True
        schema, merged = sharded_counts(node, db, pool=_shard_tier_pool(), shards=3)
        return Relation.from_counts(schema, merged)

    relation = _recurse_with_cores("shard", expr, db, is_core, run_core)
    if not took_fast_path[0]:
        raise PlanningError("shard tier declines: no co-partitionable join core")
    return relation


#: Lazily-created persistent backends for the ``backend:<name>`` tier
#: family, mirroring the shard tier's pool: the whole point of the
#: backend interface is connection reuse, so the tier exercises it.
_TIER_BACKENDS: Dict[str, object] = {}


def _tier_backend(name: str):
    from repro.backends import create_backend

    backend = _TIER_BACKENDS.get(name)
    if backend is None or getattr(backend, "closed", False):
        backend = create_backend(name)  # BackendUnavailableError -> skip
        _TIER_BACKENDS[name] = backend
    return backend


def _run_backend_tier(backend_name: str, expr: Expression, db: Database) -> Relation:
    """Evaluate through a :mod:`repro.backends` execution backend.

    ``backend:duckdb`` transpiles the *whole* expression and lets the
    engine's native optimizer run it — a second independent engine next
    to the ``sqlite`` oracle tier.  ``backend:sqlite`` instead *hints*:
    every maximal hintable core (trees of Rel/Restrict/Join/LeftOuterJoin/
    RightOuterJoin) is rendered as explicitly nested ``CROSS JOIN`` SQL
    pinning the written join order, so the order-forcing grammar itself
    is what gets differentially fuzzed; wrapper operators (FOJ, union,
    semi/anti, GOJ, dedup projections) evaluate via the algebra layer on
    the recursed children.  Raises :class:`PlanningError` — a cross-check
    *skip* — when no multi-relation core is hintable, so the tier never
    silently duplicates the algebra tier.
    """
    from repro.backends.hints import HintError, join_shape
    from repro.core.expressions import Join, LeftOuterJoin, Rel, Restrict, RightOuterJoin

    backend = _tier_backend(backend_name)
    backend.load_database(db)

    if backend_name != "sqlite":
        return backend.execute(expr)

    took_fast_path = [False]

    def structural(node: Expression) -> bool:
        if isinstance(node, Rel):
            return True
        if isinstance(node, Restrict):
            return structural(node.child)
        if isinstance(node, (Join, LeftOuterJoin, RightOuterJoin)):
            return structural(node.left) and structural(node.right)
        return False

    def is_core(node: Expression) -> bool:
        return structural(node)

    def run_core(node: Expression) -> Relation:
        try:
            relation = backend.execute(node, hint=node)
        except HintError as exc:
            # No SQL form (opaque predicate): decline the whole case,
            # exactly like the sqlite oracle tier's TranspileError skip.
            raise PlanningError(f"backend:sqlite tier declines: {exc}") from exc
        if not isinstance(join_shape(node), str):
            took_fast_path[0] = True
        return relation

    relation = _recurse_with_cores("backend:sqlite", expr, db, is_core, run_core)
    if not took_fast_path[0]:
        raise PlanningError("backend:sqlite tier declines: no multi-relation hintable core")
    return relation


def _run_yannakakis(expr: Expression, db: Database, storage) -> Relation:
    """Evaluate with every maximal join core on the acyclic fast path.

    A *core* subtree is a pure tree of Rel/Join/LeftOuterJoin/
    RightOuterJoin — exactly the fragment :func:`~repro.core.graph.graph_of`
    abstracts into a query graph.  Each maximal core runs as a GYO join
    tree through :class:`~repro.engine.yannakakis.YannakakisOp` (under the
    ambient batch mode, so the CI matrix covers both row and columnar
    reducers); wrapper and extended operators evaluate via the algebra
    layer on the recursed children.  Raises :class:`PlanningError` — a
    cross-check *skip* — when no core yields a safe join tree, so the
    tier never silently duplicates the algebra tier.
    """
    from repro.core.expressions import Join, LeftOuterJoin, Rel, RightOuterJoin
    from repro.core.graph import graph_of
    from repro.core.gyo import join_tree_of
    from repro.engine.executor import execute_plan
    from repro.engine.yannakakis import build_yannakakis_plan

    registry = storage.registry
    took_fast_path = [False]

    def is_core(node: Expression) -> bool:
        if isinstance(node, Rel):
            return True
        if isinstance(node, (Join, LeftOuterJoin, RightOuterJoin)):
            return is_core(node.left) and is_core(node.right)
        return False

    def run_core(node: Expression) -> Relation:
        graph = graph_of(node, registry)
        tree = join_tree_of(graph, registry)
        if tree is None:
            raise PlanningError(
                f"yannakakis tier declines: no safe join tree for {node!r}"
            )
        took_fast_path[0] = True
        return execute_plan(build_yannakakis_plan(tree, storage, {})).relation

    relation = _recurse_with_cores("yannakakis", expr, db, is_core, run_core)
    if not took_fast_path[0]:
        raise PlanningError("yannakakis tier declines: no multi-relation join core")
    return relation


def _run_wcoj(expr: Expression, db: Database, storage) -> Relation:
    """Evaluate with every maximal cyclic join core on the WCOJ fast path.

    A *core* here is a pure tree of Rel/Join — outerjoins never enter a
    cyclic core (Theorem 1 certifies reordering them only on the
    implementing-tree side), so unlike the yannakakis tier they are
    handled as wrappers via the algebra layer.  Each maximal core whose
    attribute-class hypergraph is genuinely cyclic runs as a Leapfrog
    Triejoin over sorted tries (under the ambient batch mode, so the CI
    matrix covers both output paths).  Raises :class:`PlanningError` — a
    cross-check *skip* — when no core is WCOJ-eligible, so the tier
    never silently duplicates the algebra tier.  Note the existing
    ``cycle``/``random`` fuzz topologies join every edge on ``.a = .a``,
    collapsing all attributes into one class; their class hypergraphs
    are acyclic and this tier declines on them by design — only the
    alternating-attribute cyclic topologies actually run here.
    """
    from repro.core.expressions import Join, Rel
    from repro.core.graph import graph_of
    from repro.core.wcoj_order import wcoj_spec_of
    from repro.engine.executor import execute_plan
    from repro.engine.wcoj import build_wcoj_plan

    registry = storage.registry
    took_fast_path = [False]

    def is_core(node: Expression) -> bool:
        if isinstance(node, Rel):
            return True
        if isinstance(node, Join):
            return is_core(node.left) and is_core(node.right)
        return False

    def run_core(node: Expression) -> Relation:
        graph = graph_of(node, registry)
        spec = wcoj_spec_of(graph, registry)
        if spec is None:
            raise PlanningError(
                f"wcoj tier declines: join core is not cyclic for {node!r}"
            )
        took_fast_path[0] = True
        return execute_plan(build_wcoj_plan(spec, storage, {})).relation

    relation = _recurse_with_cores("wcoj", expr, db, is_core, run_core)
    if not took_fast_path[0]:
        raise PlanningError("wcoj tier declines: no cyclic join core")
    return relation


@dataclass
class CheckResult:
    """Outcome of one differential check across executor tiers."""

    expr: Expression
    baseline: Optional[str] = None
    results: Dict[str, Relation] = field(default_factory=dict)
    skipped: Dict[str, str] = field(default_factory=dict)
    mismatches: List[Tuple[str, str, RelationDiff]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.ok:
            ran = ", ".join(sorted(self.results))
            skip = f" (skipped: {', '.join(sorted(self.skipped))})" if self.skipped else ""
            return f"agree across [{ran}]{skip}"
        lines = [f"{len(self.mismatches)} tier disagreement(s) on {self.expr!r}:"]
        for a, b, diff in self.mismatches:
            lines.append(f"  {a} vs {b}: {diff}")
        return "\n".join(lines)


def cross_check(
    expr: Expression,
    db: Database,
    executors: Tuple[str, ...] = EXECUTOR_TIERS,
    storage=None,
    oracle=None,
    strict: bool = False,
) -> CheckResult:
    """Run ``expr`` through every tier and compare results pairwise.

    The first tier that produces a result is the baseline; every later
    result is compared to it with :func:`bag_equal` (under the padding
    convention), which by transitivity establishes pairwise equality.
    A tier raising :class:`ReproError` (no physical plan, no SQL
    lowering, ...) is recorded in ``skipped`` unless ``strict``.
    """
    instrumentation.bump("conformance_checks")
    result = CheckResult(expr=expr)
    if storage is None and any(e in _STORAGE_TIERS for e in executors):
        from repro.engine.storage import Storage

        storage = Storage.from_database(db)
    with maybe_span("conformance.cross_check", category="conformance") as check_span:
        for name in executors:
            with maybe_span(
                f"conformance.tier.{name}", category="conformance.tier", tier=name
            ) as tier_span:
                try:
                    relation = run_executor(name, expr, db, storage=storage, oracle=oracle)
                except ReproError as exc:
                    if strict:
                        raise
                    result.skipped[name] = str(exc)
                    if tier_span is not None:
                        tier_span.set(outcome="skipped", reason=str(exc)[:200])
                    continue
                result.results[name] = relation
                if tier_span is not None:
                    tier_span.counters["rows"] = len(relation)
                    tier_span.set(outcome="ok")
                if result.baseline is None:
                    result.baseline = name
                    continue
                base = result.results[result.baseline]
                if not bag_equal(base, relation):
                    instrumentation.bump("conformance_mismatches")
                    result.mismatches.append(
                        (result.baseline, name, explain_difference(base, relation))
                    )
                    if tier_span is not None:
                        tier_span.set(outcome="mismatch", against=result.baseline)
        if check_span is not None:
            check_span.counters["tiers_ran"] = len(result.results)
            check_span.counters["tiers_skipped"] = len(result.skipped)
            check_span.counters["mismatches"] = len(result.mismatches)
    return result
