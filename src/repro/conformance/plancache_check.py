"""Conformance mode for plan-cache replay: cached results must be bag-equal.

Theorem 1 is what makes the plan cache *sound*: every valid implementing
tree of a nice graph with strong predicates computes the same result, so
replaying the tree cached for one query against a different query with
the same canonical fingerprint cannot change semantics.  This module
checks the claim end to end, the same way the differential fuzzer checks
the executors: generate a random scenario, sample **two different
implementing trees** of its graph, optimize both through one shared
:class:`~repro.optimizer.plancache.PlanCache` (the second must hit), and
demand the replayed plan's engine result is bag-equal to the *naive*
algebra evaluation of the second tree — the slow transcription of the
paper's definitions, evaluated with kernels off.

Graphs that are not freely reorderable are exercised too, with one
twist: two implementing trees of a *non-nice* graph are inequivalent
queries in general (Example 2), and the pipeline's simplification step
can legitimately fire for one tree shape but not another (a strong join
predicate sitting above an outerjoin converts it; the same predicate
below does not) — so their fingerprints may rightly differ.  Those
cases therefore replay the *same* written tree twice: the cache must
hit on the verdict, keep the written order, and still agree with the
oracle.  Fingerprint identity across *different* trees is asserted
exactly when Theorem 1 applies — which is the theorem's own scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.algebra.comparison import bag_equal
from repro.conformance.check import supported_executors
from repro.core.enumeration import count_implementing_trees, sample_implementing_tree
from repro.core.reorderability import theorem1_applies
from repro.datagen.queries import random_scenario
from repro.datagen.random_db import random_database
from repro.engine.executor import execute
from repro.engine.storage import Storage
from repro.optimizer.pipeline import optimize_query
from repro.optimizer.plancache import PlanCache
from repro.tools import instrumentation
from repro.util.fastpath import kernel_mode
from repro.util.rng import make_rng


@dataclass
class PlanCacheReport:
    """Tally of one plan-cache conformance run."""

    cases: int = 0
    hits: int = 0
    reorderable: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        lines = [
            f"plan-cache conformance: {self.cases} cases, {self.hits} cache hit(s), "
            f"{self.reorderable} freely reorderable, {len(self.mismatches)} mismatch(es)"
        ]
        for mismatch in self.mismatches:
            lines.append(f"  FAIL {mismatch}")
        return "\n".join(lines)


def check_plan_cache(cases: int = 200, seed: int = 0) -> PlanCacheReport:
    """Run ``cases`` cached-vs-oracle experiments; report disagreements.

    Each case uses a *fresh private* cache so the hit being asserted is
    exactly the one the case just stored — the process-wide default cache
    is never touched.
    """
    master = make_rng(seed)
    report = PlanCacheReport()
    while report.cases < cases:
        case_seed = master.randrange(2**32)
        rng = make_rng(case_seed)
        scenario = random_scenario(rng)
        for _ in range(20):
            if count_implementing_trees(scenario.graph) > 0:
                break
            scenario = random_scenario(rng)
        else:
            scenario = random_scenario(rng, kind="chain")
        db = random_database(
            scenario.schemas,
            seed=rng,
            max_rows=rng.randint(2, 6),
            domain=rng.choice((2, 3, 4)),
            null_probability=rng.choice((0.0, 0.2)),
        )
        first = sample_implementing_tree(scenario.graph, rng)
        # Only when Theorem 1 holds are two distinct trees of the graph
        # interchangeable (and guaranteed to share a fingerprint); for
        # non-reorderable graphs the cache is exercised by replaying the
        # same written query, which is all it may ever amortize there.
        verdict = theorem1_applies(scenario.graph, scenario.registry)
        second = (
            sample_implementing_tree(scenario.graph, rng)
            if verdict.freely_reorderable
            else first
        )
        if "naive" not in supported_executors(second, ("naive",)):
            continue
        storage = Storage.from_database(db)
        report.cases += 1
        instrumentation.bump("plancache_conformance_cases")
        if verdict.freely_reorderable:
            report.reorderable += 1

        cache = PlanCache(capacity=16)
        r1 = optimize_query(first, storage, cache=cache)
        r2 = optimize_query(second, storage, cache=cache)

        label = f"seed={case_seed} ({scenario.name})"
        if r1.fingerprint != r2.fingerprint:
            report.mismatches.append(
                f"{label}: fingerprints differ for equivalent trees: "
                f"{r1.fingerprint} vs {r2.fingerprint}"
            )
            continue
        if r1.fingerprint is not None and not r2.cache_hit:
            report.mismatches.append(f"{label}: second optimization missed the cache")
            continue
        if r2.cache_hit:
            report.hits += 1

        replayed = execute(r2.chosen, storage).relation
        with kernel_mode(False):
            oracle = second.eval(db)
        if not bag_equal(replayed, oracle):
            instrumentation.bump("plancache_conformance_failures")
            report.mismatches.append(
                f"{label}: replayed plan disagrees with naive oracle "
                f"({len(replayed)} vs {len(oracle)} rows)"
            )
    return report
