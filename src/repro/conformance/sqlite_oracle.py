"""Lower expression trees to SQLite SQL and execute them as an oracle.

SQLite is the one relational engine every Python ships with, and its
null/3VL semantics are the model this library copied (see
:mod:`repro.algebra.nulls`), which makes it a *fully independent* oracle:
no line of evaluation code is shared between ``expr.eval(db)`` and the
SQL produced here.

The transpiler is a visitor over :class:`repro.core.expressions`
(dispatched through ``Expression.accept``).  Each node becomes one
``SELECT``; bag semantics is preserved throughout because everything
composes via ``JOIN``/``UNION ALL`` and because projections without
``dedup`` use plain ``SELECT``.  The paper-specific operators map as:

* ``JN[p]``                → ``INNER JOIN ... ON p``
* ``OJ[p]`` / symmetric    → ``LEFT JOIN`` (operands swapped for ``←``)
* two-sided outerjoin      → ``LEFT JOIN ... UNION ALL`` the null-padded
  unmatched right rows via ``NOT EXISTS`` (portable to SQLite < 3.39,
  which lacks ``FULL OUTER JOIN``)
* semijoin / antijoin      → correlated ``EXISTS`` / ``NOT EXISTS``
* ``GOJ[S]`` (eq. 14)      → the join ``UNION ALL`` one null-padded row
  per S-projection in ``π[S](R1) EXCEPT π[S](JN(R1,R2))`` — SQLite's
  ``EXCEPT``/``DISTINCT`` treat NULLs as equal, exactly like the
  paper's set-level projection over our single null marker
* restrict / project       → ``WHERE`` / ``SELECT [DISTINCT]``
* padded union             → ``UNION ALL`` with ``NULL AS`` padding

Because ground schemes are mutually disjoint and attribute names are
globally unique (``"X.a"``), every column can keep its original quoted
name through arbitrary nesting — no alias bookkeeping is needed for
resolution, only for SQLite's requirement that subqueries be named.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.algebra.relation import Database, Relation
from repro.algebra.schema import SchemaRegistry
from repro.algebra.sqlrender import SQLRenderError, sql_identifier
from repro.core.expressions import Expression
from repro.tools import instrumentation
from repro.util.errors import EvaluationError


class TranspileError(EvaluationError):
    """The expression (or one of its predicates) has no SQL form."""


def _cols(names: Iterable[str]) -> str:
    return ", ".join(sql_identifier(n) for n in names)


def _null_padded(select_names: Sequence[str], present: Sequence[str]) -> str:
    """SELECT list producing ``select_names``, padding absent ones with NULL."""
    have = set(present)
    parts = []
    for name in select_names:
        if name in have:
            parts.append(sql_identifier(name))
        else:
            parts.append(f"NULL AS {sql_identifier(name)}")
    return ", ".join(parts)


class SQLTranspiler:
    """One-shot visitor: ``transpile(expr)`` returns ``(sql, columns)``.

    ``columns`` is the ordered output scheme of the emitted SELECT; the
    executor reads result columns by name, so the order only needs to be
    deterministic, not meaningful.
    """

    def __init__(self, registry: SchemaRegistry):
        self.registry = registry
        self._alias = 0

    def transpile(self, expr: Expression) -> Tuple[str, List[str]]:
        return expr.accept(self)

    # -- helpers -------------------------------------------------------------

    def _next_alias(self) -> str:
        self._alias += 1
        return f"t{self._alias}"

    def _pred_sql(self, predicate) -> str:
        try:
            return predicate.to_sql()
        except SQLRenderError as exc:
            raise TranspileError(str(exc)) from exc

    def _sub(self, expr: Expression) -> Tuple[str, List[str], str]:
        """Transpile a child into ``(parenthesized sql, columns, alias)``."""
        sql, cols = expr.accept(self)
        return f"({sql}) AS {self._next_alias()}", cols, ""

    def generic_visit(self, node: Expression):
        raise TranspileError(
            f"no SQL lowering for operator {type(node).__name__}"
        )

    # -- leaves --------------------------------------------------------------

    def visit_rel(self, node) -> Tuple[str, List[str]]:
        cols = sorted(self.registry[node.name].attributes)
        return f"SELECT {_cols(cols)} FROM {sql_identifier(node.name)}", cols

    # -- join family ---------------------------------------------------------

    def _binary_join(self, node, keyword: str, swap: bool) -> Tuple[str, List[str]]:
        left, right = (node.right, node.left) if swap else (node.left, node.right)
        lsub, lcols, _ = self._sub(left)
        rsub, rcols, _ = self._sub(right)
        pred = self._pred_sql(node.predicate)
        cols = lcols + rcols
        sql = f"SELECT {_cols(cols)} FROM {lsub} {keyword} {rsub} ON {pred}"
        return sql, cols

    def visit_join(self, node) -> Tuple[str, List[str]]:
        return self._binary_join(node, "JOIN", swap=False)

    def visit_left_outer_join(self, node) -> Tuple[str, List[str]]:
        return self._binary_join(node, "LEFT JOIN", swap=False)

    def visit_right_outer_join(self, node) -> Tuple[str, List[str]]:
        # X ← Y preserves Y: transpile as Y LEFT JOIN X.
        return self._binary_join(node, "LEFT JOIN", swap=True)

    def visit_full_outer_join(self, node) -> Tuple[str, List[str]]:
        """Emulated FULL JOIN, portable below SQLite 3.39.

        The left-preserved half is a plain LEFT JOIN; the unmatched right
        rows are appended with NULL padding via a correlated NOT EXISTS,
        which keeps each right row's multiplicity intact (bag semantics).
        """
        lsql, lcols = node.left.accept(self)
        rsql, rcols = node.right.accept(self)
        pred = self._pred_sql(node.predicate)
        cols = lcols + rcols
        a, b = self._next_alias(), self._next_alias()
        c, d = self._next_alias(), self._next_alias()
        matched = (
            f"SELECT {_cols(cols)} FROM ({lsql}) AS {a} "
            f"LEFT JOIN ({rsql}) AS {b} ON {pred}"
        )
        unmatched = (
            f"SELECT {_null_padded(cols, rcols)} FROM ({rsql}) AS {c} "
            f"WHERE NOT EXISTS (SELECT 1 FROM ({lsql}) AS {d} WHERE {pred})"
        )
        return f"{matched} UNION ALL {unmatched}", cols

    def _existence(self, node, negate: bool, swap: bool) -> Tuple[str, List[str]]:
        outer, inner = (node.right, node.left) if swap else (node.left, node.right)
        osql, ocols = outer.accept(self)
        isql, _icols = inner.accept(self)
        pred = self._pred_sql(node.predicate)
        a, b = self._next_alias(), self._next_alias()
        op = "NOT EXISTS" if negate else "EXISTS"
        sql = (
            f"SELECT {_cols(ocols)} FROM ({osql}) AS {a} "
            f"WHERE {op} (SELECT 1 FROM ({isql}) AS {b} WHERE {pred})"
        )
        return sql, ocols

    def visit_semijoin(self, node) -> Tuple[str, List[str]]:
        return self._existence(node, negate=False, swap=False)

    def visit_antijoin(self, node) -> Tuple[str, List[str]]:
        return self._existence(node, negate=True, swap=False)

    def visit_right_antijoin(self, node) -> Tuple[str, List[str]]:
        # X ◁ Y = Y ▷ X: the *right* operand survives.
        return self._existence(node, negate=True, swap=True)

    def visit_generalized_outerjoin(self, node) -> Tuple[str, List[str]]:
        """Equation 14, with the join SQL inlined on both sides of EXCEPT."""
        lsql, lcols = node.left.accept(self)
        rsql, rcols = node.right.accept(self)
        pred = self._pred_sql(node.predicate)
        cols = lcols + rcols
        s_attrs = sorted(node.projection)
        a, b = self._next_alias(), self._next_alias()
        c, d, e = self._next_alias(), self._next_alias(), self._next_alias()
        g = self._next_alias()
        join_sql = (
            f"SELECT {_cols(cols)} FROM ({lsql}) AS {a} JOIN ({rsql}) AS {b} ON {pred}"
        )
        join_again = (
            f"SELECT {_cols(s_attrs)} FROM ({lsql}) AS {d} JOIN ({rsql}) AS {e} ON {pred}"
        )
        missing = (
            f"SELECT {_cols(s_attrs)} FROM ({lsql}) AS {c} EXCEPT {join_again}"
        )
        padded = (
            f"SELECT {_null_padded(cols, s_attrs)} FROM ({missing}) AS {g}"
        )
        return f"{join_sql} UNION ALL {padded}", cols

    # -- unary + union -------------------------------------------------------

    def visit_restrict(self, node) -> Tuple[str, List[str]]:
        csub, cols, _ = self._sub(node.child)
        pred = self._pred_sql(node.predicate)
        return f"SELECT {_cols(cols)} FROM {csub} WHERE {pred}", cols

    def visit_project(self, node) -> Tuple[str, List[str]]:
        csub, _child_cols, _ = self._sub(node.child)
        attrs = sorted(node.attributes)
        distinct = "DISTINCT " if node.dedup else ""
        return f"SELECT {distinct}{_cols(attrs)} FROM {csub}", attrs

    def visit_union(self, node) -> Tuple[str, List[str]]:
        lsql, lcols = node.left.accept(self)
        rsql, rcols = node.right.accept(self)
        cols = sorted(set(lcols) | set(rcols))
        a, b = self._next_alias(), self._next_alias()
        sql = (
            f"SELECT {_null_padded(cols, lcols)} FROM ({lsql}) AS {a} "
            f"UNION ALL SELECT {_null_padded(cols, rcols)} FROM ({rsql}) AS {b}"
        )
        return sql, cols


def to_sqlite_sql(expr: Expression, registry: SchemaRegistry) -> str:
    """Transpile an expression tree to one SQLite SELECT statement."""
    sql, _cols_out = SQLTranspiler(registry).transpile(expr)
    return sql


class SQLiteOracle:
    """An in-memory SQLite database mirroring an algebra-level Database.

    Loads every ground relation once at construction; ``evaluate`` then
    transpiles and runs arbitrarily many expressions against it.  Values
    are mapped ``NULL`` ↔ SQL ``NULL``; everything else passes through
    sqlite3's native binding (int/float/str).

    The connection and all load/bind machinery live in
    :class:`repro.backends.sqlite_backend.SQLiteBackend`; the oracle
    borrows a warm backend from the module pool and returns it on
    ``close()``, so a fuzz campaign's thousands of per-case oracles
    recycle a handful of connections instead of opening one each.
    """

    def __init__(self, db: Database):
        from repro.backends.sqlite_backend import acquire_pooled

        self.db = db
        self.registry = db.registry
        self._backend = acquire_pooled()
        self._backend.load_database(db)

    def close(self) -> None:
        from repro.backends.sqlite_backend import release_pooled

        if self._backend is not None:
            release_pooled(self._backend)
            self._backend = None

    def __enter__(self) -> "SQLiteOracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def evaluate(self, expr: Expression) -> Relation:
        """Run the transpiled expression; return an algebra-level Relation."""
        if self._backend is None:
            raise EvaluationError("oracle is closed")
        instrumentation.bump("sqlite_oracle_queries")
        return self._backend.execute(expr)


def sqlite_evaluate(expr: Expression, db: Database) -> Relation:
    """One-shot convenience: load ``db`` into SQLite and evaluate ``expr``."""
    with SQLiteOracle(db) as oracle:
        return oracle.evaluate(expr)
