"""JSON round-tripping for databases, predicates, expressions, and fuzz cases.

Reproducer artifacts written by the fuzzer must be replayable on another
machine (or another commit) without pickling arbitrary objects, so this
module defines an explicit JSON encoding:

* values are native JSON scalars, with the null marker encoded as the
  sentinel object ``{"$null": true}`` (JSON ``null`` is deliberately not
  used so that an absent/None slot is a hard error, not a silent null);
* predicates and expressions are tagged trees (``{"kind": ...}`` /
  ``{"op": ...}``) mirroring the class structure one-to-one;
* a database is ``{name: {"scheme": [...], "rows": [[...], ...]}}`` with
  the scheme sorted and the rows sorted by their encoded form, so the
  encoding is *canonical*: equal databases serialize to identical bytes
  (the seed-determinism tests rely on this).

``CustomPredicate`` and opaque callables are not serializable — by
design, the fuzzer never generates them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.algebra.nulls import NULL, is_null
from repro.algebra.predicates import (
    And,
    AttrRef,
    Comparison,
    Const,
    IsNull,
    Not,
    Or,
    Predicate,
    Term,
    TruePredicate,
)
from repro.algebra.relation import Database, Relation
from repro.algebra.tuples import Row
from repro.core import expressions as E
from repro.util.errors import EvaluationError, PredicateError

# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------

_NULL_JSON = {"$null": True}


def value_to_json(value: Any) -> Any:
    if is_null(value):
        return dict(_NULL_JSON)
    if isinstance(value, (bool, int, float, str)):
        return value
    raise PredicateError(f"value {value!r} has no JSON encoding")


def value_from_json(doc: Any) -> Any:
    if isinstance(doc, dict):
        if doc == _NULL_JSON:
            return NULL
        raise PredicateError(f"malformed value document {doc!r}")
    if doc is None:
        raise PredicateError("JSON null is not a legal value; use {'$null': true}")
    return doc


# ---------------------------------------------------------------------------
# Databases
# ---------------------------------------------------------------------------


def database_to_json(db: Database) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for name in sorted(db):
        relation = db[name]
        scheme = sorted(relation.scheme)
        rows = [[value_to_json(row[a]) for a in scheme] for row in relation]
        rows.sort(key=lambda r: json.dumps(r, sort_keys=True))
        out[name] = {"scheme": scheme, "rows": rows}
    return out


def database_from_json(doc: Dict[str, Any]) -> Database:
    db = Database()
    for name, body in doc.items():
        scheme: List[str] = list(body["scheme"])
        rows = [
            Row(dict(zip(scheme, (value_from_json(v) for v in encoded))))
            for encoded in body["rows"]
        ]
        db.add(name, Relation(scheme, rows))
    return db


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


def term_to_json(term: Term) -> Dict[str, Any]:
    if isinstance(term, AttrRef):
        return {"attr": term.name}
    if isinstance(term, Const):
        return {"const": value_to_json(term.const)}
    raise PredicateError(f"term {term!r} has no JSON encoding")


def term_from_json(doc: Dict[str, Any]) -> Term:
    if "attr" in doc:
        return AttrRef(doc["attr"])
    if "const" in doc:
        return Const(value_from_json(doc["const"]))
    raise PredicateError(f"malformed term document {doc!r}")


def predicate_to_json(pred: Predicate) -> Dict[str, Any]:
    if isinstance(pred, TruePredicate):
        return {"kind": "true"}
    if isinstance(pred, Comparison):
        return {
            "kind": "cmp",
            "op": pred.op,
            "left": term_to_json(pred.left),
            "right": term_to_json(pred.right),
        }
    if isinstance(pred, IsNull):
        return {"kind": "isnull", "term": term_to_json(pred.term)}
    if isinstance(pred, Not):
        return {"kind": "not", "child": predicate_to_json(pred.child)}
    if isinstance(pred, And):
        return {"kind": "and", "children": [predicate_to_json(c) for c in pred.children]}
    if isinstance(pred, Or):
        return {"kind": "or", "children": [predicate_to_json(c) for c in pred.children]}
    raise PredicateError(f"predicate {pred!r} has no JSON encoding")


def predicate_from_json(doc: Dict[str, Any]) -> Predicate:
    kind = doc.get("kind")
    if kind == "true":
        return TruePredicate()
    if kind == "cmp":
        return Comparison(term_from_json(doc["left"]), doc["op"], term_from_json(doc["right"]))
    if kind == "isnull":
        return IsNull(term_from_json(doc["term"]))
    if kind == "not":
        return Not(predicate_from_json(doc["child"]))
    if kind == "and":
        return And(tuple(predicate_from_json(c) for c in doc["children"]))
    if kind == "or":
        return Or(tuple(predicate_from_json(c) for c in doc["children"]))
    raise PredicateError(f"malformed predicate document {doc!r}")


# ---------------------------------------------------------------------------
# Expressions (a visitor over Expression.accept)
# ---------------------------------------------------------------------------


class _ExprEncoder:
    """Serializing visitor; one tag per concrete Expression class."""

    def _binary(self, node: E.BinaryOp, op: str) -> Dict[str, Any]:
        return {
            "op": op,
            "left": node.left.accept(self),
            "right": node.right.accept(self),
            "predicate": predicate_to_json(node.predicate),
        }

    def visit_rel(self, node: E.Rel) -> Dict[str, Any]:
        return {"op": "rel", "name": node.name}

    def visit_join(self, node: E.Join) -> Dict[str, Any]:
        return self._binary(node, "join")

    def visit_left_outer_join(self, node: E.LeftOuterJoin) -> Dict[str, Any]:
        return self._binary(node, "loj")

    def visit_right_outer_join(self, node: E.RightOuterJoin) -> Dict[str, Any]:
        return self._binary(node, "roj")

    def visit_full_outer_join(self, node: E.FullOuterJoin) -> Dict[str, Any]:
        return self._binary(node, "foj")

    def visit_antijoin(self, node: E.Antijoin) -> Dict[str, Any]:
        return self._binary(node, "aj")

    def visit_right_antijoin(self, node: E.RightAntijoin) -> Dict[str, Any]:
        return self._binary(node, "raj")

    def visit_semijoin(self, node: E.Semijoin) -> Dict[str, Any]:
        return self._binary(node, "sj")

    def visit_generalized_outerjoin(self, node: E.GeneralizedOuterJoin) -> Dict[str, Any]:
        doc = self._binary(node, "goj")
        doc["projection"] = sorted(node.projection)
        return doc

    def visit_restrict(self, node: E.Restrict) -> Dict[str, Any]:
        return {
            "op": "restrict",
            "child": node.child.accept(self),
            "predicate": predicate_to_json(node.predicate),
        }

    def visit_project(self, node: E.Project) -> Dict[str, Any]:
        return {
            "op": "project",
            "child": node.child.accept(self),
            "attributes": sorted(node.attributes),
            "dedup": node.dedup,
        }

    def visit_union(self, node: E.Union) -> Dict[str, Any]:
        return {
            "op": "union",
            "left": node.left.accept(self),
            "right": node.right.accept(self),
        }

    def generic_visit(self, node: E.Expression):
        raise EvaluationError(f"cannot serialize operator {type(node).__name__}")


_BINARY_DECODERS = {
    "join": E.Join,
    "loj": E.LeftOuterJoin,
    "roj": E.RightOuterJoin,
    "foj": E.FullOuterJoin,
    "aj": E.Antijoin,
    "raj": E.RightAntijoin,
    "sj": E.Semijoin,
}


def expression_to_json(expr: E.Expression) -> Dict[str, Any]:
    return expr.accept(_ExprEncoder())


def expression_from_json(doc: Dict[str, Any]) -> E.Expression:
    op = doc.get("op")
    if op == "rel":
        return E.Rel(doc["name"])
    if op in _BINARY_DECODERS:
        return _BINARY_DECODERS[op](
            expression_from_json(doc["left"]),
            expression_from_json(doc["right"]),
            predicate_from_json(doc["predicate"]),
        )
    if op == "goj":
        return E.GeneralizedOuterJoin(
            expression_from_json(doc["left"]),
            expression_from_json(doc["right"]),
            predicate_from_json(doc["predicate"]),
            frozenset(doc["projection"]),
        )
    if op == "restrict":
        return E.Restrict(expression_from_json(doc["child"]), predicate_from_json(doc["predicate"]))
    if op == "project":
        return E.Project(
            expression_from_json(doc["child"]),
            frozenset(doc["attributes"]),
            dedup=doc["dedup"],
        )
    if op == "union":
        return E.Union(expression_from_json(doc["left"]), expression_from_json(doc["right"]))
    raise EvaluationError(f"malformed expression document {doc!r}")


# ---------------------------------------------------------------------------
# Fuzz cases
# ---------------------------------------------------------------------------

#: Format tag written into every artifact; bump on incompatible changes.
ARTIFACT_VERSION = 1


def case_to_json(case) -> Dict[str, Any]:
    """Encode a :class:`repro.conformance.fuzz.FuzzCase` (duck-typed)."""
    return {
        "version": ARTIFACT_VERSION,
        "seed": case.seed,
        "description": case.description,
        "executors": list(case.executors),
        "database": database_to_json(case.database),
        "expression": expression_to_json(case.expression),
    }


def case_from_json(doc: Dict[str, Any]):
    """Decode a fuzz case; inverse of :func:`case_to_json`."""
    from repro.conformance.fuzz import FuzzCase

    version = doc.get("version", ARTIFACT_VERSION)
    if version != ARTIFACT_VERSION:
        raise EvaluationError(
            f"reproducer artifact version {version} not supported (expected {ARTIFACT_VERSION})"
        )
    return FuzzCase(
        seed=doc["seed"],
        description=doc.get("description", ""),
        executors=tuple(doc["executors"]),
        database=database_from_json(doc["database"]),
        expression=expression_from_json(doc["expression"]),
    )


def case_dumps(case) -> str:
    """Canonical textual form (stable key order, 2-space indent)."""
    return json.dumps(case_to_json(case), sort_keys=True, indent=2) + "\n"
