"""Differential conformance harness: machine-checked semantic equivalence.

The paper's claims are equivalence claims — identities 1-16 and Theorem 1
all assert that differently-shaped trees compute *the same relation* — so
this package makes equivalence checking a first-class subsystem with
three independent oracle tiers:

1. **naive algebra** (``executors="naive"``): the nested-loop operators
   that transcribe the paper's definitions — the in-tree semantic truth;
2. **engine tiers** (``"kernels"``, ``"engine"``, ``"engine-merge"``):
   the hash kernels and the iterator engine's hash/merge plans — the
   code we actually want to trust;
3. **SQLite** (``"sqlite"``): the stdlib ``sqlite3`` engine running a
   transpiled form of the same query — an oracle that shares *no code*
   with this library.

On top of the tiers sit :func:`check_plan_space` (run every implementing
tree and every optimizer output of a query graph and require pairwise
bag-equality — Theorem 1 as an executable assertion) and the
coverage-aware differential fuzzer (:mod:`repro.conformance.fuzz`) that
shrinks any mismatch to a minimal, replayable JSON reproducer.
"""

from repro.conformance.check import (
    EXECUTOR_TIERS,
    CheckResult,
    cross_check,
    run_executor,
)
from repro.conformance.equivalence import PlanSpaceReport, check_plan_space
from repro.conformance.fuzz import (
    CampaignReport,
    FuzzCase,
    generate_case,
    replay_artifact,
    run_campaign,
    run_case,
)
from repro.conformance.plancache_check import PlanCacheReport, check_plan_cache
from repro.conformance.serialize import (
    case_dumps,
    case_from_json,
    case_to_json,
    database_from_json,
    database_to_json,
    expression_from_json,
    expression_to_json,
)
from repro.conformance.shrink import shrink_case
from repro.conformance.sqlite_oracle import (
    SQLiteOracle,
    TranspileError,
    to_sqlite_sql,
)

__all__ = [
    "CampaignReport",
    "CheckResult",
    "EXECUTOR_TIERS",
    "FuzzCase",
    "PlanCacheReport",
    "PlanSpaceReport",
    "SQLiteOracle",
    "TranspileError",
    "case_dumps",
    "case_from_json",
    "case_to_json",
    "check_plan_cache",
    "check_plan_space",
    "cross_check",
    "database_from_json",
    "database_to_json",
    "expression_from_json",
    "expression_to_json",
    "generate_case",
    "replay_artifact",
    "run_campaign",
    "run_case",
    "run_executor",
    "shrink_case",
    "to_sqlite_sql",
]
