"""Coverage-aware differential fuzzing across the executor tiers.

Each fuzz *case* is a complete experiment: a random scenario, a random
database over its schemas, a random query, and the list of executor
tiers that can run it.  Running a case cross-checks all tiers pairwise
(:func:`repro.conformance.check.cross_check`); any disagreement is
shrunk (:func:`repro.conformance.shrink.shrink_case`) and written as a
replayable JSON artifact.

Coverage steering: the campaign keeps a counter of generated features
(topology family, extended operator) and each new case picks the
*least-covered* option, so long campaigns rotate through the whole
feature grid instead of oversampling the default shapes.  The steering
is deterministic — one master seed fixes the entire case sequence,
including every steered choice — which the seed-determinism tests
assert byte-for-byte.

Corpus caching: because generation is deterministic, a campaign's whole
case list is a pure function of (seed, cases, topologies, the datagen
source code).  ``run_campaign(corpus_dir=...)`` persists the generated
cases under a key derived from exactly those inputs and replays them on
later runs, skipping regeneration; CI keys an ``actions/cache`` entry on
the same source hash so the eight fuzz jobs stop regenerating identical
inputs.  Only *inputs* are cached — every case is still executed and
cross-checked in full, and the per-case executor list is recomputed at
load time so a cached corpus never masks a tier added since it was
written.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.relation import Database
from repro.conformance.check import (
    EXECUTOR_TIERS,
    CheckResult,
    cross_check,
    supported_executors,
)
from repro.conformance.serialize import case_dumps, case_from_json, case_to_json
from repro.conformance.shrink import shrink_case
from repro.core.enumeration import count_implementing_trees
from repro.core.expressions import Expression
from repro.datagen.queries import (
    EXTENDED_OPS,
    TOPOLOGY_KINDS,
    random_query,
    random_scenario,
)
from repro.datagen.random_db import random_database
from repro.tools import instrumentation
from repro.util.rng import make_rng


@dataclass
class FuzzCase:
    """One self-contained differential experiment."""

    seed: int
    description: str
    executors: Tuple[str, ...]
    database: Database
    expression: Expression


def _least_covered(options: Sequence[str], prefix: str, coverage: Counter, rng) -> str:
    """The option with minimal coverage; ties broken by the case rng."""
    lowest = min(coverage[f"{prefix}:{o}"] for o in options)
    candidates = [o for o in options if coverage[f"{prefix}:{o}"] == lowest]
    return candidates[0] if len(candidates) == 1 else rng.choice(candidates)


def _validated_topologies(topologies: Optional[Sequence[str]]) -> Tuple[str, ...]:
    """The topology filter as a validated tuple (default: every kind).

    An unknown name — or a filter that matches *nothing* — is an error,
    not a silent no-op: a campaign invoked with a typo'd ``--topologies``
    used to fall through to the full grid and report green coverage on
    families it never ran.
    """
    if topologies is None:
        return tuple(TOPOLOGY_KINDS)
    chosen = tuple(topologies)
    unknown = [t for t in chosen if t not in TOPOLOGY_KINDS]
    if unknown or not chosen:
        raise ValueError(
            f"unknown topology kind(s) {unknown or '<empty>'}; "
            f"expected a non-empty subset of {tuple(TOPOLOGY_KINDS)}"
        )
    return chosen


def generate_case(
    seed: int,
    coverage: Optional[Counter] = None,
    executors: Tuple[str, ...] = EXECUTOR_TIERS,
    topologies: Optional[Sequence[str]] = None,
) -> FuzzCase:
    """Generate one case; updates ``coverage`` with the chosen features.

    Regenerating a case from its seed requires the same coverage state
    (the steering reads it), so reproducers are persisted as full JSON
    artifacts rather than as seeds.  ``topologies`` restricts the steered
    topology choice (default: all of ``TOPOLOGY_KINDS``) — campaigns use
    it to focus on acyclic families.
    """
    if coverage is None:
        coverage = Counter()
    rng = make_rng(seed)
    topology = _least_covered(
        _validated_topologies(topologies), "topology", coverage, rng
    )
    extended = _least_covered(EXTENDED_OPS, "op", coverage, rng)
    coverage[f"topology:{topology}"] += 1
    coverage[f"op:{extended}"] += 1

    # Arbitrary random graphs may have no implementing trees at all (e.g.
    # two outerjoin arrows meeting head-on leave no legal root cut);
    # resample until realizable, falling back to a chain.
    scenario = random_scenario(rng, kind=topology)
    for _ in range(20):
        if count_implementing_trees(scenario.graph) > 0:
            break
        scenario = random_scenario(rng, kind=topology)
    else:
        scenario = random_scenario(rng, kind="chain")
    db = random_database(
        scenario.schemas,
        seed=rng,
        max_rows=rng.randint(2, 6),
        domain=rng.choice((2, 3, 4)),
        null_probability=rng.choice((0.0, 0.15, 0.35)),
        duplicate_probability=rng.choice((0.0, 0.3)),
    )
    expr = random_query(scenario, rng, extended=extended)
    return FuzzCase(
        seed=seed,
        description=f"{scenario.name} op={extended}",
        executors=supported_executors(expr, executors),
        database=db,
        expression=expr,
    )


def run_case(case: FuzzCase) -> CheckResult:
    """Differentially check one case across its executor tiers."""
    instrumentation.bump("fuzz_cases")
    return cross_check(case.expression, case.database, executors=case.executors)


@dataclass
class CampaignFailure:
    """A disagreement found by a campaign, after shrinking."""

    case: FuzzCase
    shrunk: FuzzCase
    result: CheckResult
    artifact: Optional[str] = None

    def summary(self) -> str:
        where = f" -> {self.artifact}" if self.artifact else ""
        return (
            f"seed={self.case.seed} ({self.case.description}): "
            f"{self.result.summary()}{where}"
        )


@dataclass
class CampaignReport:
    """Everything a campaign did: counts, coverage, and failures."""

    cases: int = 0
    failures: List[CampaignFailure] = field(default_factory=list)
    coverage: Dict[str, int] = field(default_factory=dict)
    skipped_tiers: Dict[str, int] = field(default_factory=dict)
    #: "hit" / "miss" when a corpus cache was consulted, else None.
    corpus: Optional[str] = None
    corpus_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz campaign: {self.cases} cases, {len(self.failures)} disagreement(s)"
        ]
        if self.corpus is not None:
            lines.append(f"  corpus cache: {self.corpus} ({self.corpus_path})")
        for key in sorted(self.coverage):
            lines.append(f"  coverage {key}: {self.coverage[key]}")
        for key in sorted(self.skipped_tiers):
            lines.append(f"  skipped {key}: {self.skipped_tiers[key]} case(s)")
        for failure in self.failures:
            lines.append(f"  FAIL {failure.summary()}")
        return "\n".join(lines)


#: Bumped when the corpus file layout changes; part of the cache key.
CORPUS_VERSION = 1


def datagen_source_hash() -> str:
    """SHA-256 over the datagen package sources (and the serializer).

    Any edit to case generation or to the serialization format changes
    the hash, invalidating cached corpora — the same file set CI's
    ``actions/cache`` key hashes, so local and CI invalidation agree.
    """
    import repro.conformance.serialize as serialize_mod
    import repro.datagen as datagen_pkg

    files: List[str] = [serialize_mod.__file__]
    for directory in datagen_pkg.__path__:
        for entry in sorted(os.listdir(directory)):
            if entry.endswith(".py"):
                files.append(os.path.join(directory, entry))
    digest = hashlib.sha256()
    for path in sorted(files):
        with open(path, "rb") as fh:
            digest.update(os.path.basename(path).encode())
            digest.update(fh.read())
    return digest.hexdigest()


def corpus_cache_key(
    cases: int, seed: int, topologies: Optional[Sequence[str]]
) -> str:
    """The deterministic identity of one campaign's generated inputs."""
    material = json.dumps(
        {
            "version": CORPUS_VERSION,
            "cases": cases,
            "seed": seed,
            "topologies": sorted(topologies) if topologies else None,
            "datagen": datagen_source_hash(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()[:24]


def _corpus_load(path: str, executors: Tuple[str, ...]) -> Optional[Tuple[List[FuzzCase], Dict[str, int]]]:
    """Load a corpus file; None on any structural problem (treat as miss).

    Per-case executor lists are *recomputed* against the live tier set:
    a corpus written before a tier existed must not silently exclude it.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("version") != CORPUS_VERSION:
            return None
        cases = [case_from_json(d) for d in doc["cases"]]
        coverage = dict(doc.get("coverage", {}))
    except (OSError, ValueError, KeyError, TypeError):
        return None
    for case in cases:
        case.executors = supported_executors(case.expression, executors)
    return cases, coverage


def _corpus_save(
    path: str, cases: List[FuzzCase], coverage: Dict[str, int]
) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    doc = {
        "version": CORPUS_VERSION,
        "cases": [case_to_json(c) for c in cases],
        "coverage": coverage,
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
    os.replace(tmp, path)


def save_artifact(case: FuzzCase, directory: str) -> str:
    """Write a replayable reproducer JSON; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"repro-{case.seed}.json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(case_dumps(case))
    return path


def run_campaign(
    cases: int,
    seed: int = 0,
    executors: Tuple[str, ...] = EXECUTOR_TIERS,
    artifacts_dir: Optional[str] = None,
    shrink: bool = True,
    topologies: Optional[Sequence[str]] = None,
    corpus_dir: Optional[str] = None,
) -> CampaignReport:
    """Run a fixed-seed campaign of ``cases`` differential checks.

    On each disagreement the case is shrunk to a minimal reproducer and,
    when ``artifacts_dir`` is given, persisted there as JSON.  The
    report's ``ok`` property is the campaign verdict.  ``topologies``
    narrows the graph families the generator draws from.  With
    ``corpus_dir``, generated inputs are cached on disk keyed by
    (seed, cases, topologies, datagen sources) and replayed on later
    runs — execution always happens in full; only generation is skipped.
    """
    case_list: Optional[List[FuzzCase]] = None
    coverage: Counter = Counter()
    report = CampaignReport()
    if corpus_dir is not None:
        key = corpus_cache_key(cases, seed, topologies)
        report.corpus_path = os.path.join(corpus_dir, f"corpus-{key}.json")
        loaded = _corpus_load(report.corpus_path, executors)
        if loaded is not None and len(loaded[0]) == cases:
            case_list, stored_coverage = loaded
            coverage.update(stored_coverage)
            report.corpus = "hit"
            instrumentation.bump("fuzz_corpus_hits")
        else:
            report.corpus = "miss"
            instrumentation.bump("fuzz_corpus_misses")
    if case_list is None:
        master = make_rng(seed)
        case_list = [
            generate_case(
                master.randrange(2**32), coverage, executors, topologies=topologies
            )
            for _ in range(cases)
        ]
        if report.corpus == "miss" and report.corpus_path is not None:
            _corpus_save(report.corpus_path, case_list, dict(coverage))
    for case in case_list:
        result = run_case(case)
        report.cases += 1
        for tier in result.skipped:
            report.skipped_tiers[tier] = report.skipped_tiers.get(tier, 0) + 1
        if result.ok:
            continue
        instrumentation.bump("fuzz_failures")
        shrunk = shrink_case(case) if shrink else case
        final = cross_check(shrunk.expression, shrunk.database, executors=shrunk.executors)
        if final.ok:  # shrinking lost the bug somehow; keep the original
            shrunk, final = case, result
        artifact = save_artifact(shrunk, artifacts_dir) if artifacts_dir else None
        report.failures.append(
            CampaignFailure(case=case, shrunk=shrunk, result=final, artifact=artifact)
        )
    report.coverage = dict(coverage)
    return report


def replay_artifact(path: str) -> Tuple[FuzzCase, CheckResult]:
    """Load a reproducer JSON and re-run its differential check."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    case = case_from_json(doc)
    return case, run_case(case)
