"""Greedy delta-debugging of failing fuzz cases.

A raw fuzzer counterexample is rarely readable: five relations, nested
decorations, dozens of rows.  :func:`shrink_case` reduces it while the
executor tiers still disagree, using three move kinds iterated to a
fixpoint:

1. **subtree replacement** — swap the whole query for one of its proper
   subtrees (restricting the database to the relations that remain);
2. **decoration collapse** — splice out an interior Restrict/Project;
3. **row removal** — greedily delete distinct rows (then single
   duplicates) from the ground relations.

Each candidate is accepted iff the differential check still fails, so
the final case provably reproduces a disagreement.  The checks run
against the case's own executor list; a tier that stops applying after a
move (or newly applies) is handled by the skip machinery in
:func:`~repro.conformance.check.cross_check`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace
from typing import Iterator, List, Tuple

from repro.algebra.relation import Database, Relation
from repro.conformance.check import cross_check
from repro.core.expressions import Expression, Project, Rel, Restrict, replace_at
from repro.tools import instrumentation

#: Hard ceiling on differential checks per shrink (a failing check costs
#: one evaluation per tier; runaway shrinks would dwarf the campaign).
MAX_CHECKS = 400


def _restrict_database(db: Database, expr: Expression) -> Database:
    """Drop ground relations the expression no longer references."""
    needed = expr.relations()
    return Database({name: db[name] for name in db if name in needed})


def _fails(case, budget: List[int]) -> bool:
    if budget[0] <= 0:
        return False
    budget[0] -= 1
    return not cross_check(
        case.expression, case.database, executors=case.executors
    ).ok


def _expression_moves(expr: Expression) -> Iterator[Expression]:
    """Candidate smaller expressions, most aggressive first."""
    # Whole-query replacement by each proper subtree (skip bare leaves:
    # a single table scan cannot disagree in interesting ways, and the
    # minimal counterexamples we want keep at least one operator).
    for path, node in expr.nodes():
        if path and not isinstance(node, Rel):
            yield node
    # Interior decoration collapse.
    for path, node in expr.nodes():
        if isinstance(node, (Restrict, Project)):
            yield replace_at(expr, path, node.child)


def _row_moves(db: Database) -> Iterator[Tuple[str, Relation]]:
    """Candidate databases with one distinct row removed or de-duplicated."""
    for name in sorted(db):
        relation = db[name]
        for row in sorted(relation.distinct_rows(), key=repr):
            counts = Counter(relation.counts())
            del counts[row]
            yield name, Relation.from_counts(relation.schema, counts)
        for row in sorted(relation.distinct_rows(), key=repr):
            if relation.multiplicity(row) > 1:
                counts = Counter(relation.counts())
                counts[row] -= 1
                yield name, Relation.from_counts(relation.schema, counts)


def shrink_case(case, max_checks: int = MAX_CHECKS):
    """Minimize a failing :class:`~repro.conformance.fuzz.FuzzCase`.

    Returns a new case (the input is never mutated) that still fails its
    differential check, or the input unchanged if it does not fail to
    begin with.
    """
    budget = [max_checks]
    if not _fails(case, budget):
        return case
    instrumentation.bump("shrink_runs")

    improved = True
    while improved and budget[0] > 0:
        improved = False
        # Pass 1: shrink the expression tree.
        for candidate_expr in _expression_moves(case.expression):
            candidate = replace(
                case,
                expression=candidate_expr,
                database=_restrict_database(case.database, candidate_expr),
            )
            if _fails(candidate, budget):
                case = candidate
                improved = True
                break
        if improved:
            continue
        # Pass 2: shrink the data.
        for name, smaller in _row_moves(case.database):
            candidate = replace(case, database=case.database.with_relation(name, smaller))
            if _fails(candidate, budget):
                case = candidate
                improved = True
                break
    return case
