"""Plan-space equivalence: Theorem 1 as an executable assertion.

Theorem 1 says that for *nice* query graphs — the freely-reorderable
class — every implementing tree evaluates to the same relation.
:func:`check_plan_space` makes that machine-checked on a concrete
database: it enumerates the graph's implementing trees, runs each of
them (plus every optimizer's chosen tree — DP, greedy, the
outerjoin-barrier baseline, and the rewrite optimizer), and demands that
all results are pairwise bag-equal, with the first tree additionally
cross-checked against the external SQLite oracle.

Pairwise equality over N trees is established as N comparisons against
one reference result; bag equality is transitive.

For graphs that are **not** nice (Example 2's outerjoin-into-a-join is
the canonical case) the theorem's equivalence claim does not hold — the
implementing trees legitimately compute different relations — so the
checker downgrades to the strongest statement that *is* true there:
every individual tree must still agree with itself across all executor
tiers.  The report's ``nice`` flag records which regime applied.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.algebra.comparison import RelationDiff, bag_equal, explain_difference
from repro.algebra.relation import Database, Relation
from repro.conformance.check import CheckResult, cross_check, supported_executors
from repro.conformance.sqlite_oracle import SQLiteOracle
from repro.core.enumeration import count_implementing_trees, implementing_trees
from repro.core.expressions import Expression
from repro.datagen.random_db import random_database
from repro.datagen.topologies import GraphScenario
from repro.tools import instrumentation


@dataclass
class PlanSpaceReport:
    """Verdict over one graph's entire (possibly truncated) plan space."""

    scenario: str
    trees_total: int
    nice: bool = True
    trees_checked: int = 0
    optimizers_checked: List[str] = field(default_factory=list)
    reference: Optional[Expression] = None
    cross_check_result: Optional[CheckResult] = None
    mismatches: List[Tuple[str, Expression, RelationDiff]] = field(default_factory=list)
    tier_failures: List[Tuple[str, Expression, CheckResult]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        cross_ok = self.cross_check_result is None or self.cross_check_result.ok
        return cross_ok and not self.mismatches and not self.tier_failures

    @property
    def truncated(self) -> bool:
        return self.trees_checked < self.trees_total

    def summary(self) -> str:
        regime = "all equivalent" if self.nice else "per-tree tier conformance (not nice)"
        head = (
            f"{self.scenario}: {self.trees_checked}/{self.trees_total} trees, "
            f"optimizers [{', '.join(self.optimizers_checked)}]"
        )
        if self.ok:
            note = " (TRUNCATED)" if self.truncated else ""
            return f"{head} -- {regime}{note}"
        lines = [
            f"{head} -- {len(self.mismatches) + len(self.tier_failures)} mismatch(es)"
        ]
        for label, expr, diff in self.mismatches:
            lines.append(f"  {label}: {expr!r}\n    {diff}")
        for label, expr, result in self.tier_failures:
            lines.append(f"  {label}: {expr!r}\n    {result.summary()}")
        if self.cross_check_result is not None and not self.cross_check_result.ok:
            lines.append("  " + self.cross_check_result.summary())
        return "\n".join(lines)


def _optimizer_trees(scenario: GraphScenario, storage, reference: Expression):
    """(label, expression) pairs from every optimizer entry point."""
    from repro.optimizer import (
        CardinalityEstimator,
        CoutCostModel,
        DPOptimizer,
        GreedyOptimizer,
        OuterjoinBarrierOptimizer,
        RewriteOptimizer,
        fixed_order_plan,
    )

    cost_model = CoutCostModel(CardinalityEstimator(storage))
    registry = scenario.registry
    yield "dp", DPOptimizer(scenario.graph, cost_model).optimize().expr
    yield "greedy", GreedyOptimizer(scenario.graph, cost_model).optimize().expr
    yield "barrier", OuterjoinBarrierOptimizer(registry, cost_model).optimize(reference).expr
    yield "rewriter", RewriteOptimizer(registry, cost_model).optimize_hill_climb(reference).best.expr
    yield "fixed-order", fixed_order_plan(reference, cost_model).expr


def check_plan_space(
    scenario: GraphScenario,
    db: Optional[Database] = None,
    seed: int | None = None,
    max_trees: Optional[int] = 2000,
    executors: Tuple[str, ...] = ("naive", "kernels", "engine", "engine-merge", "sqlite"),
    include_optimizers: bool = True,
) -> PlanSpaceReport:
    """Run every implementing tree and optimizer output; require equality.

    The first enumerated tree is the reference: it is cross-checked
    through all requested executor tiers (SQLite included), and every
    other tree/optimizer result is compared to its algebra-level result.
    ``max_trees`` bounds enumeration on large graphs — the report's
    ``truncated`` flag makes the cap explicit, never silent.

    When the graph is not nice, cross-tree equality is not a theorem —
    instead *every* tree (and optimizer output) is cross-checked through
    the executor tiers individually.
    """
    from repro.core.niceness import is_nice

    instrumentation.bump("planspace_checks")
    if db is None:
        db = random_database(scenario.schemas, seed=seed)
    from repro.engine.storage import Storage

    storage = Storage.from_database(db)
    total = count_implementing_trees(scenario.graph)
    nice = is_nice(scenario.graph)
    report = PlanSpaceReport(scenario=scenario.name, trees_total=total, nice=nice)

    def tier_check(label: str, expr: Expression) -> CheckResult:
        result = cross_check(
            expr,
            db,
            executors=supported_executors(expr, executors),
            storage=storage,
            oracle=oracle,
        )
        if not result.ok:
            instrumentation.bump("planspace_mismatches")
            report.tier_failures.append((label, expr, result))
        return result

    reference_result: Optional[Relation] = None
    with SQLiteOracle(db) as oracle:
        trees = itertools.islice(implementing_trees(scenario.graph), max_trees)
        for i, tree in enumerate(trees):
            report.trees_checked += 1
            if reference_result is None:
                report.reference = tree
                # The reference failure is reported via cross_check_result,
                # not tier_failures, so it is never double-counted.
                report.cross_check_result = cross_check(
                    tree,
                    db,
                    executors=supported_executors(tree, executors),
                    storage=storage,
                    oracle=oracle,
                )
                baseline_tier = report.cross_check_result.baseline
                reference_result = report.cross_check_result.results[baseline_tier]
                continue
            if not nice:
                tier_check(f"tree#{i}", tree)
                continue
            candidate = tree.eval(db)
            if not bag_equal(reference_result, candidate):
                instrumentation.bump("planspace_mismatches")
                report.mismatches.append(
                    (f"tree#{i}", tree, explain_difference(reference_result, candidate))
                )
        if include_optimizers and report.reference is not None:
            for label, expr in _optimizer_trees(scenario, storage, report.reference):
                report.optimizers_checked.append(label)
                if not nice:
                    tier_check(label, expr)
                    continue
                candidate = expr.eval(db)
                if not bag_equal(reference_result, candidate):
                    instrumentation.bump("planspace_mismatches")
                    report.mismatches.append(
                        (label, expr, explain_difference(reference_result, candidate))
                    )
    return report
