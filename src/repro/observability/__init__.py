"""Query-lifecycle observability: spans, exporters, and the metrics contract.

The substrate every perf claim in this repository reports through: a
zero-dependency hierarchical span tracer (:mod:`repro.observability.spans`)
instrumenting the optimizer, the execution engine, and the conformance
tiers; exporters to canonical JSON and Chrome trace-event format
(:mod:`repro.observability.export`); and the test-enforced metrics
contract (:mod:`repro.observability.contract`).

Quick start::

    from repro.observability import tracing

    with tracing(enabled=True) as tracer:
        result = execute(query, storage)
    root = tracer.roots[0]               # the query-lifecycle span tree
    root.find("SeqScan").counters        # per-operator rows/timings

``REPRO_TRACE`` contract: unset — ambient phase-level tracing (no
per-row cost); ``1`` — full per-operator metering; ``0`` — tracing off.
Results are bit-identical in every mode (the tracer observes, never
steers).  An explicit ``tracing(enabled=True)`` always records full
detail.
"""

from repro.observability.contract import (
    ENGINE_OP_CATEGORY,
    memory_high_water,
    operator_spans,
    validate_span_tree,
    validate_trace_document,
)
from repro.observability.export import (
    TRACE_FORMAT,
    TRACE_VERSION,
    load_trace,
    records_to_spans,
    spans_to_records,
    to_chrome_trace,
    trace_document,
    write_trace,
)
from repro.observability.spans import (
    Span,
    Tracer,
    active_span,
    current_tracer,
    default_tracer,
    env_detail,
    env_enabled,
    maybe_span,
    tracing,
)

__all__ = [
    "ENGINE_OP_CATEGORY",
    "Span",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Tracer",
    "active_span",
    "current_tracer",
    "default_tracer",
    "env_detail",
    "env_enabled",
    "load_trace",
    "maybe_span",
    "memory_high_water",
    "operator_spans",
    "records_to_spans",
    "spans_to_records",
    "to_chrome_trace",
    "trace_document",
    "tracing",
    "validate_span_tree",
    "validate_trace_document",
    "write_trace",
]
