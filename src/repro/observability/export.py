"""Trace exporters: canonical flat JSON and Chrome trace-event format.

The canonical on-disk form (``docs/trace.schema.json``) is a *flat* list
of span records with integer ids and parent references — deliberately
non-recursive so the dependency-free draft-07 subset implemented by
:mod:`repro.tools.benchschema` can validate it.  The Chrome form is the
``traceEvents`` array understood by ``chrome://tracing`` and Perfetto
(one complete ``"ph": "X"`` event per finished span, microsecond
timestamps), for eyeballing a query's timeline interactively.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.observability.spans import Span
from repro.util.errors import ReproError

#: Format tag stamped into every canonical trace document.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


def _attr_value(value: Any) -> Any:
    """Attrs must stay JSON scalars; anything else is stringified."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def spans_to_records(roots: Sequence[Span]) -> List[Dict[str, Any]]:
    """Flatten span trees into id/parent records, pre-order."""
    records: List[Dict[str, Any]] = []
    ids: Dict[int, int] = {}
    for root in roots:
        for parent, span in root.walk():
            sid = len(records)
            ids[id(span)] = sid
            records.append(
                {
                    "id": sid,
                    "parent": ids[id(parent)] if parent is not None else None,
                    "name": span.name,
                    "category": span.category,
                    "start_ns": span.start_ns,
                    "end_ns": span.end_ns,
                    "tid": span.tid,
                    "counters": {k: int(v) for k, v in sorted(span.counters.items())},
                    "attrs": {k: _attr_value(v) for k, v in sorted(span.attrs.items())},
                }
            )
    return records


def trace_document(roots: Sequence[Span], meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The canonical trace document for a set of root spans."""
    doc_meta: Dict[str, Any] = {"format": TRACE_FORMAT, "version": TRACE_VERSION}
    if meta:
        doc_meta.update({k: _attr_value(v) for k, v in meta.items()})
    return {"meta": doc_meta, "spans": spans_to_records(roots)}


def records_to_spans(records: Sequence[Dict[str, Any]]) -> List[Span]:
    """Rebuild span trees from flat records (inverse of
    :func:`spans_to_records`); returns the roots."""
    by_id: Dict[int, Span] = {}
    roots: List[Span] = []
    for rec in records:
        span = Span(rec["name"], rec.get("category", "span"))
        span.start_ns = rec.get("start_ns")
        span.end_ns = rec.get("end_ns")
        span.tid = rec.get("tid", 0)
        span.counters.update(rec.get("counters", {}))
        span.attrs.update(rec.get("attrs", {}))
        by_id[rec["id"]] = span
        parent = rec.get("parent")
        if parent is None:
            roots.append(span)
        else:
            if parent not in by_id:
                raise ReproError(f"trace record {rec['id']} references unknown parent {parent}")
            by_id[parent].children.append(span)
    return roots


def to_chrome_trace(roots: Sequence[Span], process_name: str = "repro") -> Dict[str, Any]:
    """Chrome trace-event JSON (open in chrome://tracing or Perfetto)."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    base = min(
        (s.start_ns for root in roots for _p, s in root.walk() if s.started),
        default=0,
    )
    for root in roots:
        for _parent, span in root.walk():
            if not span.finished:
                continue
            args: Dict[str, Any] = {k: int(v) for k, v in sorted(span.counters.items())}
            args.update({k: _attr_value(v) for k, v in sorted(span.attrs.items())})
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "pid": 1,
                    "tid": span.tid % 1_000_000,
                    "ts": (span.start_ns - base) / 1e3,
                    "dur": (span.end_ns - span.start_ns) / 1e3,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(
    path: str | Path,
    roots: Sequence[Span],
    meta: Optional[Dict[str, Any]] = None,
    form: str = "json",
) -> Path:
    """Serialize a trace to disk in the requested form and return the path."""
    path = Path(path)
    if form == "json":
        doc: Dict[str, Any] = trace_document(roots, meta=meta)
    elif form == "chrome":
        doc = to_chrome_trace(roots)
    else:
        raise ReproError(f"unknown trace form {form!r}; expected 'json' or 'chrome'")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_trace(path: str | Path) -> Dict[str, Any]:
    """Load a canonical trace document, sanity-checking its format tag."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "spans" not in doc:
        raise ReproError(f"{path} is not a repro trace document")
    if doc.get("meta", {}).get("format") not in (TRACE_FORMAT, None):
        raise ReproError(f"{path} has unknown trace format {doc['meta'].get('format')!r}")
    return doc
