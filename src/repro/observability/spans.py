"""Hierarchical span tracing: the engine's own flight recorder.

A :class:`Span` is one timed interval of work (an operator's lifetime, an
optimizer phase, a conformance tier) carrying integer ``counters`` (rows
in/out, index hits, build nanoseconds) and string-ish ``attrs`` (plan
labels, dispatch decisions).  Spans form a tree: the query-lifecycle
trace of optimize → plan → execute is one root span whose descendants are
the phases and physical operators beneath it.

A :class:`Tracer` collects root spans and hands out children two ways:

* **stack-scoped** via the :meth:`Tracer.span` context manager — each
  thread keeps its own stack, so concurrent queries trace independently;
* **structural** via :meth:`Tracer.child` — the engine executor mirrors
  the physical plan tree explicitly, which keeps per-row accounting free
  of any thread-local lookups.

Everything here is standard library only.  The module-level switchboard
(:func:`current_tracer`, :func:`tracing`, :func:`maybe_span`) implements
the ``REPRO_TRACE`` contract:

* unset — the process-wide default tracer is live at ``"phases"``
  detail: query/optimizer-phase/conformance-tier spans (a handful per
  query) are recorded, but physical operators are *not* individually
  wrapped, so ambient tracing adds no per-row work;
* truthy (``1``/``true``/...) — the default tracer runs at ``"full"``
  detail: the engine additionally meters every operator (rows in/out,
  per-operator wall time, build/probe timings) at per-row cost;
* ``0``/``false``/``no``/``off`` — tracing is off and every
  instrumented code path degrades to a no-op.

An explicitly installed tracer (:func:`tracing`, e.g. under EXPLAIN
ANALYZE or the contract tests) always runs at full detail and overrides
the environment.
"""

from __future__ import annotations

import os
import threading
from collections import Counter, deque
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Dict, Iterator, List, Optional, Tuple

#: Environment variable controlling the default tracer.
TRACE_ENV = "REPRO_TRACE"

#: Falsy spellings of the env switch.
_OFF = ("0", "false", "no", "off")


def env_detail() -> str:
    """The tracing detail requested by the environment.

    ``"off"`` (REPRO_TRACE=0), ``"phases"`` (unset — the cheap ambient
    default), or ``"full"`` (explicitly truthy — per-operator metering).
    """
    raw = os.environ.get(TRACE_ENV)
    if raw is None:
        return "phases"
    return "off" if raw.lower() in _OFF else "full"


def env_enabled() -> bool:
    """Is tracing enabled by the environment?  Unset means *on*."""
    return env_detail() != "off"


class Span:
    """One timed node of a trace tree."""

    __slots__ = ("name", "category", "start_ns", "end_ns", "counters", "attrs", "children", "tid")

    def __init__(self, name: str, category: str = "span", **attrs):
        self.name = name
        self.category = category
        self.start_ns: Optional[int] = None
        self.end_ns: Optional[int] = None
        self.counters: Counter = Counter()
        self.attrs: Dict[str, object] = dict(attrs)
        self.children: List["Span"] = []
        self.tid = threading.get_ident()

    # -- lifecycle ---------------------------------------------------------

    def begin(self, ts: Optional[int] = None) -> "Span":
        """Record the start time; idempotent (first call wins)."""
        if self.start_ns is None:
            self.start_ns = perf_counter_ns() if ts is None else ts
        return self

    def finish(self, ts: Optional[int] = None) -> "Span":
        """Record the end time (last call wins; spans may be re-opened by
        re-iteration, e.g. under a Materialize)."""
        self.end_ns = perf_counter_ns() if ts is None else ts
        return self

    @property
    def started(self) -> bool:
        return self.start_ns is not None

    @property
    def finished(self) -> bool:
        return self.start_ns is not None and self.end_ns is not None

    @property
    def duration_ns(self) -> Optional[int]:
        if not self.finished:
            return None
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> Optional[float]:
        d = self.duration_ns
        return None if d is None else d / 1e6

    # -- accounting --------------------------------------------------------

    def add(self, key: str, count: int = 1) -> None:
        """Bump an integer counter."""
        self.counters[key] += count

    def set(self, **attrs) -> None:
        """Attach descriptive attributes (labels, decisions, sizes)."""
        self.attrs.update(attrs)

    def child(self, name: str, category: str = "span", **attrs) -> "Span":
        """Create and attach a structural child span (not yet begun)."""
        span = Span(name, category, **attrs)
        self.children.append(span)
        return span

    # -- queries -----------------------------------------------------------

    def walk(self) -> Iterator[Tuple[Optional["Span"], "Span"]]:
        """Yield ``(parent, span)`` pairs over the subtree, pre-order."""
        stack: List[Tuple[Optional[Span], Span]] = [(None, self)]
        while stack:
            parent, span = stack.pop()
            yield parent, span
            for c in reversed(span.children):
                stack.append((span, c))

    def find(self, name_fragment: str, category: Optional[str] = None) -> Optional["Span"]:
        """First span (pre-order) whose name contains ``name_fragment``."""
        for _parent, span in self.walk():
            if name_fragment in span.name and (category is None or span.category == category):
                return span
        return None

    def find_all(self, category: str) -> List["Span"]:
        """Every span of one category in the subtree, pre-order."""
        return [s for _p, s in self.walk() if s.category == category]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = f" {self.duration_ms:.3f}ms" if self.finished else ""
        return f"Span({self.name!r}, {self.category}{dur}, {dict(self.counters)})"


class Tracer:
    """A thread-safe collector of span trees.

    ``enabled=False`` makes every entry point a cheap no-op that still
    yields ``None``-safe objects, so call sites need no branching beyond
    the :func:`maybe_span` helper.  ``max_roots`` bounds memory for
    long-lived default tracers.  ``detail`` is ``"full"`` (engine wraps
    every operator for per-row metering) or ``"phases"`` (phase-level
    spans only; the ambient default, see :func:`env_detail`).
    """

    def __init__(
        self,
        enabled: bool = True,
        max_roots: Optional[int] = None,
        detail: str = "full",
    ):
        self.enabled = enabled
        self.detail = detail
        self._roots: deque = deque(maxlen=max_roots)
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def trace_operators(self) -> bool:
        """Should the engine pay for per-operator (per-row) metering?"""
        return self.enabled and self.detail == "full"

    # -- root bookkeeping --------------------------------------------------

    @property
    def roots(self) -> List[Span]:
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open stack-scoped span on this thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _attach(self, span: Span) -> None:
        parent = self.current()
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # -- span creation -----------------------------------------------------

    @contextmanager
    def span(self, name: str, category: str = "span", **attrs):
        """Stack-scoped span: nested calls on the same thread become
        children; the span begins on entry and finishes on exit."""
        if not self.enabled:
            yield None
            return
        span = Span(name, category, **attrs)
        self._attach(span)
        stack = self._stack()
        stack.append(span)
        span.begin()
        try:
            yield span
        finally:
            span.finish()
            stack.pop()

    def child(self, parent: Optional[Span], name: str, category: str = "span", **attrs) -> Optional[Span]:
        """Structural child creation (or a new root when ``parent`` is
        None); returns None when disabled."""
        if not self.enabled:
            return None
        if parent is None:
            span = Span(name, category, **attrs)
            self._attach(span)
            return span
        return parent.child(name, category, **attrs)


# ---------------------------------------------------------------------------
# The active-tracer switchboard
# ---------------------------------------------------------------------------

#: Per-thread explicitly-installed tracer stack (``tracing()``).
_installed = threading.local()

#: Lazily-created process-wide default tracer (REPRO_TRACE on/unset).
_default: Optional[Tracer] = None
_default_lock = threading.Lock()

#: Root-span retention of the default tracer — bounded so that leaving
#: tracing on in a long-lived process cannot grow memory without limit.
DEFAULT_MAX_ROOTS = 64


def default_tracer() -> Tracer:
    """The process-wide default tracer (created on first use).

    Its detail level follows ``REPRO_TRACE`` dynamically, so flipping the
    environment between queries (as tests do) takes effect immediately.
    """
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = Tracer(enabled=True, max_roots=DEFAULT_MAX_ROOTS)
    detail = env_detail()
    if detail != "off" and _default.detail != detail:
        _default.detail = detail
    return _default


def current_tracer() -> Optional[Tracer]:
    """The tracer instrumented code should report to, or None.

    Resolution order: the innermost :func:`tracing` installation on this
    thread (which may be an explicitly *disabled* tracer, masking the
    default), else the process default when ``REPRO_TRACE`` permits,
    else None.
    """
    stack = getattr(_installed, "stack", None)
    if stack:
        tracer = stack[-1]
        return tracer if tracer.enabled else None
    if env_enabled():
        return default_tracer()
    return None


@contextmanager
def tracing(tracer: Optional[Tracer] = None, enabled: Optional[bool] = None):
    """Install a tracer for the duration of the block and yield it.

    With no arguments a fresh tracer is created honouring ``REPRO_TRACE``;
    ``enabled=True`` forces full-detail tracing on regardless of the
    environment (EXPLAIN ANALYZE does this), ``enabled=False`` forces it
    off.  Explicit installations always use full detail: asking for a
    tracer by hand is asking for per-operator actuals.
    """
    if tracer is None:
        tracer = Tracer(enabled=env_enabled() if enabled is None else enabled)
    stack = getattr(_installed, "stack", None)
    if stack is None:
        stack = []
        _installed.stack = stack
    stack.append(tracer)
    try:
        yield tracer
    finally:
        stack.pop()


@contextmanager
def maybe_span(name: str, category: str = "span", **attrs):
    """A span on the active tracer, or a no-op yielding None."""
    tracer = current_tracer()
    if tracer is None:
        yield None
        return
    with tracer.span(name, category, **attrs) as span:
        yield span


def active_span() -> Optional[Span]:
    """The innermost open stack-scoped span of the active tracer."""
    tracer = current_tracer()
    return None if tracer is None else tracer.current()
