"""The metrics contract: invariants every trace must satisfy.

The tracer is only trustworthy if its numbers are internally consistent,
so the contract pins down what "consistent" means and the property tests
(:mod:`tests.test_observability_contract`) enforce it over hundreds of
randomized traced queries:

* **Timing sanity** — every finished span has ``end >= start``; a span
  with an end has a start.
* **Nesting** — a child interval lies within its parent's interval
  (children are finalized before their parents close, so this holds even
  for operators abandoned early by semi/anti short-circuits).
* **Row conservation** — for engine operator spans, a parent's ``rows_in``
  equals the sum of its children's ``rows_out``: no row crossing an
  operator boundary goes unaccounted.
* **Root accuracy** — the plan root's ``rows_out`` equals the number of
  rows the query actually returned.

Violations come back as strings (not exceptions) so tests and tools can
report all of them at once.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.observability.export import records_to_spans
from repro.observability.spans import Span

#: Category used by the engine's per-operator spans.
ENGINE_OP_CATEGORY = "engine.op"


def validate_span_tree(root: Span, result_rows: Optional[int] = None) -> List[str]:
    """All contract violations in one span tree (empty list means clean)."""
    errors: List[str] = []
    for parent, span in root.walk():
        where = f"{span.category}:{span.name}"
        if span.end_ns is not None and span.start_ns is None:
            errors.append(f"{where}: finished but never started")
        if span.finished and span.end_ns < span.start_ns:
            errors.append(f"{where}: negative duration ({span.start_ns} -> {span.end_ns})")
        if parent is not None and span.started and parent.started:
            if span.start_ns < parent.start_ns:
                errors.append(f"{where}: starts before parent {parent.name}")
            if span.finished and parent.finished and span.end_ns > parent.end_ns:
                errors.append(f"{where}: ends after parent {parent.name}")
        if span.category == ENGINE_OP_CATEGORY:
            op_children = [c for c in span.children if c.category == ENGINE_OP_CATEGORY]
            if op_children:
                fed = sum(c.counters.get("rows_out", 0) for c in op_children)
                if span.counters.get("rows_in", 0) != fed:
                    errors.append(
                        f"{where}: rows_in={span.counters.get('rows_in', 0)} but "
                        f"children emitted {fed}"
                    )
        for key, value in span.counters.items():
            if value < 0:
                errors.append(f"{where}: counter {key} is negative ({value})")
    if result_rows is not None:
        plan_root = _plan_root(root)
        if plan_root is None:
            errors.append("no engine operator span found to check the root row count")
        elif plan_root.counters.get("rows_out", 0) != result_rows:
            errors.append(
                f"plan root {plan_root.name} reported rows_out="
                f"{plan_root.counters.get('rows_out', 0)} but the query returned {result_rows}"
            )
    return errors


def _plan_root(root: Span) -> Optional[Span]:
    """The topmost engine-operator span under (or at) ``root``."""
    if root.category == ENGINE_OP_CATEGORY:
        return root
    for _parent, span in root.walk():
        if span.category == ENGINE_OP_CATEGORY:
            return span
    return None


def validate_trace_document(doc: dict, result_rows: Optional[int] = None) -> List[str]:
    """Contract check for a loaded flat trace document (all roots)."""
    try:
        roots = records_to_spans(doc.get("spans", []))
    except Exception as exc:  # malformed parent links etc.
        return [f"unreadable trace document: {exc}"]
    errors: List[str] = []
    for root in roots:
        errors.extend(validate_span_tree(root, result_rows=result_rows))
    return errors


def memory_high_water(root: Span) -> int:
    """Largest number of rows any single operator held materialized.

    An estimate in *rows*, not bytes: hash builds, sort buffers, NLJ
    inner materializations and Materialize caches each report their
    ``mem_rows``; the high-water mark is the maximum across operators
    (buffers coexist, but per-operator peaks are what the paper's
    accounting needs to compare access paths).
    """
    return max(
        (s.counters.get("mem_rows", 0) for _p, s in root.walk()),
        default=0,
    )


def operator_spans(roots: Sequence[Span]) -> List[Span]:
    """Every engine-operator span across the given trees, pre-order."""
    out: List[Span] = []
    for root in roots:
        out.extend(root.find_all(ENGINE_OP_CATEGORY))
    return out
