"""Integer-bitset encoding of query-graph node sets.

Connected-subset and cut enumeration (IT enumeration, the optimizer DP)
are exponential walks over node subsets.  The naive code represents every
subset as a ``frozenset[str]`` and re-runs a BFS per connectivity check;
this module maps each node to one bit of a machine integer so the same
walks run on ints:

* subsets are masks; union/intersection/complement are single ops;
* neighborhoods are precomputed per-node masks, OR-merged and memoized
  per subset mask;
* connectivity is a bit-parallel flood fill, memoized per mask;
* cut legality (all-join cut vs. exactly one outerjoin edge — the
  Section 3.1 rule shared by IT enumeration and the DP) is an edge scan
  over precomputed endpoint masks, memoized per (mask, mask) pair.

Node-to-bit assignment follows the sorted node order, so ascending local
submasks of any subset correspond to ascending global masks — the fast
enumerators can therefore yield partitions in *exactly* the order the
naive code does, keeping plan tie-breaking and IT enumeration order
byte-identical between the two paths.

Frozensets only appear at the API boundary (:meth:`BitsetIndex.set_of`),
which is what keeps the public signatures unchanged.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.algebra.predicates import Predicate, conjunction

#: A cut verdict: ("join" | "loj" | "roj", predicate), or None (no operator).
CutOperator = Optional[Tuple[str, Predicate]]


class BitsetIndex:
    """Node <-> bit table plus memoized subset machinery for one graph.

    Built lazily by :meth:`repro.core.graph.QueryGraph.bitset_index` and
    cached on the (immutable) graph, so every optimizer/enumerator pass
    over the same graph shares the memo tables.
    """

    __slots__ = (
        "nodes",
        "bit",
        "node_masks",
        "all_mask",
        "neighbor_masks",
        "_join_edges",
        "_oj_edges",
        "_set_memo",
        "_conn_memo",
        "_nbhood_memo",
        "_cut_memo",
        "_subset_masks",
    )

    def __init__(self, graph) -> None:
        self.nodes: Tuple[str, ...] = tuple(sorted(graph.nodes))
        self.bit: Dict[str, int] = {name: i for i, name in enumerate(self.nodes)}
        self.node_masks: Dict[str, int] = {name: 1 << i for name, i in self.bit.items()}
        self.all_mask: int = (1 << len(self.nodes)) - 1
        neighbor = [0] * len(self.nodes)
        self._join_edges: List[Tuple[int, int, Predicate]] = []
        for pair, predicate in graph.join_edges.items():
            u, v = sorted(pair)
            mu, mv = self.node_masks[u], self.node_masks[v]
            neighbor[self.bit[u]] |= mv
            neighbor[self.bit[v]] |= mu
            self._join_edges.append((mu, mv, predicate))
        #: Outerjoin edges as (preserved_mask, null_supplied_mask, predicate).
        self._oj_edges: List[Tuple[int, int, Predicate]] = []
        for (u, v), predicate in graph.oj_edges.items():
            mu, mv = self.node_masks[u], self.node_masks[v]
            neighbor[self.bit[u]] |= mv
            neighbor[self.bit[v]] |= mu
            self._oj_edges.append((mu, mv, predicate))
        self.neighbor_masks: Tuple[int, ...] = tuple(neighbor)
        self._set_memo: Dict[int, FrozenSet[str]] = {}
        self._conn_memo: Dict[int, bool] = {}
        self._nbhood_memo: Dict[int, int] = {}
        self._cut_memo: Dict[Tuple[int, int], CutOperator] = {}
        self._subset_masks: Optional[List[int]] = None

    # -- mask <-> set conversion ------------------------------------------------

    def mask_of(self, nodes: Iterable[str]) -> int:
        """Encode a node collection as a bit mask."""
        mask = 0
        node_masks = self.node_masks
        for name in nodes:
            mask |= node_masks[name]
        return mask

    def set_of(self, mask: int) -> FrozenSet[str]:
        """Decode a mask to a frozenset (memoized; masks recur heavily)."""
        cached = self._set_memo.get(mask)
        if cached is None:
            names = self.nodes
            cached = frozenset(names[i] for i in self._bits(mask))
            self._set_memo[mask] = cached
        return cached

    @staticmethod
    def _bits(mask: int) -> Iterator[int]:
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    # -- adjacency and connectivity ----------------------------------------------

    def neighborhood(self, mask: int) -> int:
        """Union of the neighbor masks of every node in ``mask``."""
        cached = self._nbhood_memo.get(mask)
        if cached is None:
            cached = 0
            for i in self._bits(mask):
                cached |= self.neighbor_masks[i]
            self._nbhood_memo[mask] = cached
        return cached

    def is_connected(self, mask: int) -> bool:
        """Is the induced subgraph on ``mask`` connected?  (Empty: False.)"""
        cached = self._conn_memo.get(mask)
        if cached is not None:
            return cached
        if mask == 0:
            result = False
        else:
            reached = mask & -mask  # start the flood fill at the lowest bit
            while True:
                grown = (reached | self.neighborhood(reached)) & mask
                if grown == reached:
                    break
                reached = grown
            result = reached == mask
        self._conn_memo[mask] = result
        return result

    def connected_subset_masks(self) -> List[int]:
        """Every connected subset as a mask (BFS expansion, cached)."""
        if self._subset_masks is None:
            found: set[int] = set(self.node_masks.values())
            frontier = list(found)
            while frontier:
                grown: List[int] = []
                for mask in frontier:
                    candidates = self.neighborhood(mask) & ~mask
                    for i in self._bits(candidates):
                        bigger = mask | (1 << i)
                        if bigger not in found:
                            found.add(bigger)
                            grown.append(bigger)
                frontier = grown
            for mask in found:
                self._conn_memo[mask] = True
            self._subset_masks = sorted(found)
        return self._subset_masks

    # -- partitions and cuts --------------------------------------------------------

    def ordered_partitions(self, mask: int) -> Iterator[Tuple[int, int]]:
        """Ordered partitions of ``mask`` into two connected halves.

        Submasks are generated in ascending numeric order, which — because
        bit order equals sorted node order — matches the naive
        enumeration's ordering exactly.
        """
        sub = (-mask) & mask  # lowest nonzero submask
        while sub != mask:
            complement = mask ^ sub
            if self.is_connected(sub) and self.is_connected(complement):
                yield sub, complement
            sub = (sub - mask) & mask

    def cut_operator(self, side_a: int, side_b: int) -> CutOperator:
        """Which operator (if any) the cut between two masks supports.

        The Section 3.1 rule: all crossing edges join edges -> a regular
        join labeled with their conjunction; exactly one crossing
        outerjoin edge -> an outerjoin preserving the arrow's tail side;
        anything else supports no operator.
        """
        key = (side_a, side_b)
        if key in self._cut_memo:
            return self._cut_memo[key]
        join_cut: List[Predicate] = []
        for mu, mv, predicate in self._join_edges:
            if (mu & side_a and mv & side_b) or (mu & side_b and mv & side_a):
                join_cut.append(predicate)
        oj_cut: List[Tuple[int, Predicate]] = []
        for mu, mv, predicate in self._oj_edges:
            if (mu & side_a and mv & side_b) or (mu & side_b and mv & side_a):
                oj_cut.append((mu, predicate))
        result: CutOperator
        if (oj_cut and join_cut) or len(oj_cut) > 1:
            result = None
        elif oj_cut:
            preserved_mask, predicate = oj_cut[0]
            result = ("loj" if preserved_mask & side_a else "roj", predicate)
        elif join_cut:
            result = ("join", conjunction(join_cut))
        else:
            result = None
        self._cut_memo[key] = result
        return result
