"""Variable-order selection for worst-case optimal joins.

Leapfrog Triejoin (Veldhuizen 2012) evaluates a conjunctive join query
variable-at-a-time: pick a *global order* of the join-attribute
equivalence classes, index every relation as a sorted trie whose key
levels follow that order, and intersect the tries level by level.  This
module does the *planning* half of that story, staying in the core layer
(no engine imports):

* :func:`wcoj_spec_of` decides eligibility — a connected, pure-join
  query graph whose every edge carries at least one hash-decomposable
  equality conjunct and whose attribute-class hypergraph is genuinely
  *cyclic* (GYO gets stuck).  Acyclic graphs return ``None``: the
  Yannakakis fast path and the binary-tree DP already own them, and the
  paper's outerjoin theory (Theorem 1) never certifies reordering an
  outerjoin into the middle of a cyclic core, so graphs with outerjoin
  edges return ``None`` too.
* The chosen :class:`WcojSpec` fixes the global variable order (classes
  sorted by descending relation degree — intersect the most-shared
  variables first — with the class's minimal attribute name as a
  deterministic tie-break and identity), each relation's trie key
  levels under that order, and the residual non-equality conjuncts that
  must run as post-filters over assembled rows.

The spec is a frozen value object so the plan cache can replay it under
its generation-keyed invalidation, exactly like the Yannakakis join
tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.algebra.kernels import decompose_join_predicate
from repro.algebra.predicates import Predicate
from repro.algebra.schema import SchemaRegistry
from repro.core.graph import QueryGraph
from repro.core.gyo import _UnionFind, gyo_reduce


@dataclass(frozen=True)
class WcojSpec:
    """Everything the Leapfrog Triejoin operator needs, precomputed.

    ``variables`` is the global attribute-class order (each class named
    by its lexicographically smallest member attribute).  ``order`` is
    the relation order (one physical input per entry).  ``keys`` maps
    each relation to its trie key levels — ``(variable, attributes)``
    pairs in global variable order, where ``attributes`` are *this
    relation's* attributes in that class (more than one when the query
    equates two attributes of the same relation transitively; trie rows
    must then agree on all of them).  ``residuals`` are the non-equality
    conjuncts of the edge predicates, applied to assembled rows.
    """

    variables: Tuple[str, ...]
    order: Tuple[str, ...]
    keys: Tuple[Tuple[str, Tuple[Tuple[str, Tuple[str, ...]], ...]], ...]
    residuals: Tuple[Predicate, ...]

    def keys_for(self, relation: str) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        for name, levels in self.keys:
            if name == relation:
                return levels
        raise KeyError(relation)

    def hyperedges(self) -> Dict[str, FrozenSet[str]]:
        """Relation -> set of variables it constrains (for the AGM bound)."""
        return {
            name: frozenset(var for var, _attrs in levels)
            for name, levels in self.keys
        }


def wcoj_spec_of(
    graph: QueryGraph, registry: SchemaRegistry
) -> Optional[WcojSpec]:
    """Build the WCOJ spec for a cyclic pure-join graph, or ``None``.

    Returns ``None`` — the caller keeps its binary/Yannakakis plan —
    when the graph has outerjoin edges, is empty or disconnected, has an
    edge without an equality key (no trie key to intersect on), or when
    the attribute-class hypergraph is α-acyclic (GYO succeeds): the
    worst-case optimal path only pays off where binary plans can blow
    past the AGM bound, which is exactly the cyclic case.
    """
    if graph.oj_edges or not graph.nodes or not graph.is_connected():
        return None
    if len(graph.nodes) < 3:
        return None

    uf = _UnionFind()
    rel_key_attrs: Dict[str, List[str]] = {node: [] for node in graph.nodes}
    residuals: List[Predicate] = []
    for pair in sorted(graph.join_edges, key=sorted):
        u, v = sorted(pair)
        predicate = graph.join_edges[pair]
        left_keys, right_keys, residual = decompose_join_predicate(
            predicate, registry[u].attributes, registry[v].attributes
        )
        if not left_keys:
            return None
        for a, b in zip(left_keys, right_keys):
            uf.union(a, b)
        rel_key_attrs[u].extend(left_keys)
        rel_key_attrs[v].extend(right_keys)
        residuals.extend(residual)

    # Name every class by its smallest member attribute: stable across
    # union-find internals, so specs (and their cache entries) compare
    # equal between runs.
    members: Dict[str, List[str]] = {}
    for attrs in rel_key_attrs.values():
        for attr in attrs:
            members.setdefault(uf.find(attr), []).append(attr)
    class_name = {root: min(attrs) for root, attrs in members.items()}

    rel_classes: Dict[str, Dict[str, List[str]]] = {}
    for node, attrs in rel_key_attrs.items():
        grouped: Dict[str, List[str]] = {}
        for attr in attrs:
            grouped.setdefault(class_name[uf.find(attr)], []).append(attr)
        rel_classes[node] = {
            var: sorted(set(group)) for var, group in grouped.items()
        }

    hyper = {node: frozenset(rel_classes[node]) for node in graph.nodes}
    if gyo_reduce(hyper) is not None:
        return None  # α-acyclic: Yannakakis / DP territory

    degree: Dict[str, int] = {}
    for verts in hyper.values():
        for var in verts:
            degree[var] = degree.get(var, 0) + 1
    variables = tuple(
        sorted(degree, key=lambda var: (-degree[var], var))
    )

    order = tuple(sorted(graph.nodes))
    keys = tuple(
        (
            node,
            tuple(
                (var, tuple(rel_classes[node][var]))
                for var in variables
                if var in rel_classes[node]
            ),
        )
        for node in order
    )
    return WcojSpec(
        variables=variables,
        order=order,
        keys=keys,
        residuals=tuple(residuals),
    )
