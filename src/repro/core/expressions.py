"""Query expressions (operator trees) with bottom-up evaluation.

Section 1.2: "A query is an expression over operators in a relational
algebra.  It is expressed as a tree whose leaves correspond to relation
variables, and whose internal nodes contain joins, outerjoins, and other
algebraic operators.  The result of a query Q is denoted eval(Q), and is
defined by the usual bottom-up evaluation of expressions."

The tree is the representation that *can be evaluated*; the query graph
(:mod:`repro.core.graph`) is the representation that abstracts execution
order away.  Everything in Section 3 — implementing trees, basic
transforms, free reorderability — is phrased over these trees.

Operand order matters: the paper gives every non-commutative operator a
"symmetric form" (Section 2.1), which we realize as sibling classes
(``LeftOuterJoin``/``RightOuterJoin``, ``Antijoin``/``RightAntijoin``); the
reversal basic transform swaps operands while switching to the symmetric
class.  Expressions are immutable and hashable so closures under basic
transforms can be computed as plain sets.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import FrozenSet, Optional, Tuple

from repro.algebra import operators as ops
from repro.algebra.goj import generalized_outerjoin
from repro.algebra.predicates import Predicate, conjunction
from repro.algebra.relation import Database, Relation
from repro.algebra.schema import Schema, SchemaRegistry
from repro.util.errors import EvaluationError

#: A position in a tree: a tuple of 'L'/'R' steps from the root.
Path = Tuple[str, ...]


class Expression:
    """Abstract base class of all query-tree nodes."""

    __slots__ = ()

    #: Name of the visitor method :meth:`accept` dispatches to.  Set per
    #: concrete class; the SQL transpiler and the reproducer serializer
    #: (:mod:`repro.conformance`) are the in-tree visitors.
    visit_method = ""

    def accept(self, visitor):
        """Single-dispatch on the node kind: call ``visitor.visit_<kind>``.

        Falls back to ``visitor.generic_visit(node)`` when the specific
        method is absent, so visitors may handle only the operator subset
        they support and fail uniformly on the rest.
        """
        method = getattr(visitor, self.visit_method, None)
        if method is not None:
            return method(self)
        generic = getattr(visitor, "generic_visit", None)
        if generic is not None:
            return generic(self)
        raise EvaluationError(
            f"{type(visitor).__name__} handles neither {self.visit_method!r} "
            "nor 'generic_visit'"
        )

    def eval(self, db: Database) -> Relation:
        """Bottom-up evaluation against a database of ground relations."""
        raise NotImplementedError

    def relations(self) -> FrozenSet[str]:
        """Names of the relation variables at the leaves of this subtree."""
        raise NotImplementedError

    def scheme(self, registry: SchemaRegistry) -> Schema:
        """Scheme of the evaluation result, derived without evaluating."""
        raise NotImplementedError

    def children(self) -> Tuple["Expression", ...]:
        return ()

    def to_infix(self, show_predicates: bool = False) -> str:
        """Render in the paper's infix notation (− → ← ▷ ◁)."""
        raise NotImplementedError

    # -- tree walking -------------------------------------------------------

    def nodes(self, path: Path = ()) -> Iterator[Tuple[Path, "Expression"]]:
        """Yield ``(path, node)`` pairs in pre-order."""
        yield path, self
        kids = self.children()
        if kids:
            labels = ("L", "R") if len(kids) == 2 else ("L",)
            for label, kid in zip(labels, kids):
                yield from kid.nodes(path + (label,))

    def size(self) -> int:
        """Number of nodes in the tree."""
        return sum(1 for _ in self.nodes())

    def height(self) -> int:
        kids = self.children()
        if not kids:
            return 0
        return 1 + max(k.height() for k in kids)

    def __repr__(self) -> str:
        return self.to_infix(show_predicates=False)


class Rel(Expression):
    """A leaf: a relation variable."""

    __slots__ = ("name",)
    visit_method = "visit_rel"

    def __init__(self, name: str):
        self.name = name

    def eval(self, db: Database) -> Relation:
        try:
            return db[self.name]
        except Exception as exc:  # SchemaError from Database lookup
            raise EvaluationError(str(exc)) from exc

    def relations(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def scheme(self, registry: SchemaRegistry) -> Schema:
        return registry[self.name]

    def to_infix(self, show_predicates: bool = False) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Rel) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Rel", self.name))


class BinaryOp(Expression):
    """A binary join-like operator with an attached predicate."""

    __slots__ = ("left", "right", "predicate", "_rels")

    #: Infix symbol, following the paper's notation.
    symbol = "?"

    def __init__(self, left: Expression, right: Expression, predicate: Predicate):
        self.left = left
        self.right = right
        self.predicate = predicate
        self._rels = left.relations() | right.relations()
        overlap = left.relations() & right.relations()
        if overlap:
            raise EvaluationError(
                f"operands share relation variables {sorted(overlap)}; the paper assumes "
                "no relation is used more than once in a query"
            )

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def relations(self) -> FrozenSet[str]:
        return self._rels

    def scheme(self, registry: SchemaRegistry) -> Schema:
        return self.left.scheme(registry).union(self.right.scheme(registry))

    def with_parts(
        self, left: Expression, right: Expression, predicate: Optional[Predicate] = None
    ) -> "BinaryOp":
        """Rebuild the same operator kind with new parts (used by transforms)."""
        return type(self)(left, right, self.predicate if predicate is None else predicate)

    def to_infix(self, show_predicates: bool = False) -> str:
        tag = f" [{self.predicate!r}]" if show_predicates else ""
        return (
            f"({self.left.to_infix(show_predicates)} {self.symbol}{tag} "
            f"{self.right.to_infix(show_predicates)})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other.left == self.left  # type: ignore[attr-defined]
            and other.right == self.right  # type: ignore[attr-defined]
            and other.predicate == self.predicate  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.left, self.right, self.predicate))


class Join(BinaryOp):
    """Regular join, drawn as an undirected edge (``X − Y``)."""

    __slots__ = ()
    visit_method = "visit_join"
    symbol = "-"

    def eval(self, db: Database) -> Relation:
        return ops.join(self.left.eval(db), self.right.eval(db), self.predicate)


class LeftOuterJoin(BinaryOp):
    """``X → Y``: left operand preserved, right operand null-supplied."""

    __slots__ = ()
    visit_method = "visit_left_outer_join"
    symbol = "→"

    def eval(self, db: Database) -> Relation:
        return ops.outerjoin(self.left.eval(db), self.right.eval(db), self.predicate)

    def preserved(self) -> Expression:
        return self.left

    def null_supplied(self) -> Expression:
        return self.right


class RightOuterJoin(BinaryOp):
    """``X ← Y``: the symmetric form — right operand preserved.

    Section 2.1's convention ``X ← Y  =  Y → X``; the arrow points at the
    null-supplied relation, here the *left* operand.
    """

    __slots__ = ()
    symbol = "←"
    visit_method = "visit_right_outer_join"

    def eval(self, db: Database) -> Relation:
        return ops.outerjoin(self.right.eval(db), self.left.eval(db), self.predicate)

    def preserved(self) -> Expression:
        return self.right

    def null_supplied(self) -> Expression:
        return self.left


class FullOuterJoin(BinaryOp):
    """``X ⟷ Y``: two-sided outerjoin — both operands preserved.

    Outside the paper's core theory (Section 1.2 sets it aside) but needed
    by Section 4's conversion argument; symmetric, so reversal keeps the
    class and merely swaps operands.
    """

    __slots__ = ()
    symbol = "⟷"
    visit_method = "visit_full_outer_join"

    def eval(self, db: Database) -> Relation:
        return ops.full_outerjoin(self.left.eval(db), self.right.eval(db), self.predicate)


class Antijoin(BinaryOp):
    """``X ▷ Y``: tuples of X with no match in Y (scheme = sch(X))."""

    __slots__ = ()
    symbol = "▷"
    visit_method = "visit_antijoin"

    def eval(self, db: Database) -> Relation:
        return ops.antijoin(self.left.eval(db), self.right.eval(db), self.predicate)

    def scheme(self, registry: SchemaRegistry) -> Schema:
        return self.left.scheme(registry)


class RightAntijoin(BinaryOp):
    """``X ◁ Y  =  Y ▷ X`` (scheme = sch(Y))."""

    __slots__ = ()
    symbol = "◁"
    visit_method = "visit_right_antijoin"

    def eval(self, db: Database) -> Relation:
        return ops.antijoin(self.right.eval(db), self.left.eval(db), self.predicate)

    def scheme(self, registry: SchemaRegistry) -> Schema:
        return self.right.scheme(registry)


class Semijoin(BinaryOp):
    """``X ⋉ Y``: tuples of X having a match in Y (Section 6.3 context)."""

    __slots__ = ()
    symbol = "⋉"
    visit_method = "visit_semijoin"

    def eval(self, db: Database) -> Relation:
        return ops.semijoin(self.left.eval(db), self.right.eval(db), self.predicate)

    def scheme(self, registry: SchemaRegistry) -> Schema:
        return self.left.scheme(registry)


class GeneralizedOuterJoin(BinaryOp):
    """``GOJ[S](X, Y)`` of Section 6.2, with the projection set attached."""

    __slots__ = ("projection",)
    symbol = "GOJ"
    visit_method = "visit_generalized_outerjoin"

    def __init__(
        self,
        left: Expression,
        right: Expression,
        predicate: Predicate,
        projection: FrozenSet[str],
    ):
        super().__init__(left, right, predicate)
        self.projection = frozenset(projection)

    def eval(self, db: Database) -> Relation:
        return generalized_outerjoin(
            self.left.eval(db), self.right.eval(db), self.predicate, self.projection
        )

    def with_parts(self, left, right, predicate=None):
        return GeneralizedOuterJoin(
            left, right, self.predicate if predicate is None else predicate, self.projection
        )

    def to_infix(self, show_predicates: bool = False) -> str:
        tag = f" [{self.predicate!r}]" if show_predicates else ""
        return (
            f"({self.left.to_infix(show_predicates)} GOJ[{sorted(self.projection)}]{tag} "
            f"{self.right.to_infix(show_predicates)})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GeneralizedOuterJoin)
            and other.left == self.left
            and other.right == self.right
            and other.predicate == self.predicate
            and other.projection == self.projection
        )

    def __hash__(self) -> int:
        return hash(("GOJ", self.left, self.right, self.predicate, self.projection))


class UnaryOp(Expression):
    """A unary operator wrapping one child expression."""

    __slots__ = ("child",)

    def __init__(self, child: Expression):
        self.child = child

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def relations(self) -> FrozenSet[str]:
        return self.child.relations()


class Restrict(UnaryOp):
    """Selection (Section 4's Restriction)."""

    __slots__ = ("predicate",)
    visit_method = "visit_restrict"

    def __init__(self, child: Expression, predicate: Predicate):
        super().__init__(child)
        self.predicate = predicate

    def eval(self, db: Database) -> Relation:
        return ops.restrict(self.child.eval(db), self.predicate)

    def scheme(self, registry: SchemaRegistry) -> Schema:
        return self.child.scheme(registry)

    def to_infix(self, show_predicates: bool = False) -> str:
        tag = f"[{self.predicate!r}]" if show_predicates else ""
        return f"σ{tag}({self.child.to_infix(show_predicates)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Restrict)
            and other.child == self.child
            and other.predicate == self.predicate
        )

    def __hash__(self) -> int:
        return hash(("Restrict", self.child, self.predicate))


class Project(UnaryOp):
    """Projection; ``dedup=True`` is the paper's duplicate-removing π."""

    __slots__ = ("attributes", "dedup")
    visit_method = "visit_project"

    def __init__(self, child: Expression, attributes, dedup: bool = True):
        super().__init__(child)
        self.attributes = frozenset(attributes)
        self.dedup = dedup

    def eval(self, db: Database) -> Relation:
        return ops.project(self.child.eval(db), sorted(self.attributes), dedup=self.dedup)

    def scheme(self, registry: SchemaRegistry) -> Schema:
        return Schema(self.attributes)

    def to_infix(self, show_predicates: bool = False) -> str:
        return f"π[{sorted(self.attributes)}]({self.child.to_infix(show_predicates)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Project)
            and other.child == self.child
            and other.attributes == self.attributes
            and other.dedup == self.dedup
        )

    def __hash__(self) -> int:
        return hash(("Project", self.child, self.attributes, self.dedup))


class Union(Expression):
    """Padded bag union (Section 2.1 convention); used by proof replays."""

    __slots__ = ("left", "right")
    visit_method = "visit_union"

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def relations(self) -> FrozenSet[str]:
        return self.left.relations() | self.right.relations()

    def eval(self, db: Database) -> Relation:
        return ops.union_padded(self.left.eval(db), self.right.eval(db))

    def scheme(self, registry: SchemaRegistry) -> Schema:
        return self.left.scheme(registry).union(self.right.scheme(registry))

    def to_infix(self, show_predicates: bool = False) -> str:
        return f"({self.left.to_infix(show_predicates)} ∪ {self.right.to_infix(show_predicates)})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Union) and other.left == self.left and other.right == self.right

    def __hash__(self) -> int:
        return hash(("Union", self.left, self.right))


# ---------------------------------------------------------------------------
# Builders (read like the paper: jn / oj / aj and friends)
# ---------------------------------------------------------------------------


def rel(name: str) -> Rel:
    return Rel(name)


def jn(left, right, predicate: Predicate) -> Join:
    """``JN[p](X, Y)`` — regular join."""
    return Join(_as_expr(left), _as_expr(right), predicate)


def oj(left, right, predicate: Predicate) -> LeftOuterJoin:
    """``OJ[p](X, Y)`` — X preserved, Y null-supplied (``X → Y``)."""
    return LeftOuterJoin(_as_expr(left), _as_expr(right), predicate)


def roj(left, right, predicate: Predicate) -> RightOuterJoin:
    """``X ← Y`` — Y preserved, X null-supplied."""
    return RightOuterJoin(_as_expr(left), _as_expr(right), predicate)


def foj(left, right, predicate: Predicate) -> FullOuterJoin:
    """``X ⟷ Y`` — two-sided outerjoin, both operands preserved."""
    return FullOuterJoin(_as_expr(left), _as_expr(right), predicate)


def aj(left, right, predicate: Predicate) -> Antijoin:
    """``AJ[p](X, Y)`` = ``X ▷ Y``."""
    return Antijoin(_as_expr(left), _as_expr(right), predicate)


def sj(left, right, predicate: Predicate) -> Semijoin:
    return Semijoin(_as_expr(left), _as_expr(right), predicate)


def goj(left, right, predicate: Predicate, projection) -> GeneralizedOuterJoin:
    return GeneralizedOuterJoin(_as_expr(left), _as_expr(right), predicate, frozenset(projection))


def _as_expr(obj) -> Expression:
    if isinstance(obj, Expression):
        return obj
    if isinstance(obj, str):
        return Rel(obj)
    raise EvaluationError(f"cannot interpret {obj!r} as an expression")


# ---------------------------------------------------------------------------
# Tree surgery (used by the basic transforms of Section 3.2)
# ---------------------------------------------------------------------------


def subtree_at(expr: Expression, path: Path) -> Expression:
    """Return the node reached by following ``path`` ('L'/'R' steps)."""
    node = expr
    for step in path:
        kids = node.children()
        if step == "L":
            node = kids[0]
        elif step == "R":
            node = kids[1]
        else:
            raise EvaluationError(f"bad path step {step!r}")
    return node


def replace_at(expr: Expression, path: Path, replacement: Expression) -> Expression:
    """Return a copy of ``expr`` with the subtree at ``path`` replaced."""
    if not path:
        return replacement
    step, rest = path[0], path[1:]
    kids = expr.children()
    if isinstance(expr, BinaryOp):
        if step == "L":
            return expr.with_parts(replace_at(kids[0], rest, replacement), kids[1])
        return expr.with_parts(kids[0], replace_at(kids[1], rest, replacement))
    if isinstance(expr, Restrict):
        return Restrict(replace_at(expr.child, rest, replacement), expr.predicate)
    if isinstance(expr, Project):
        return Project(replace_at(expr.child, rest, replacement), expr.attributes, expr.dedup)
    if isinstance(expr, Union):
        if step == "L":
            return Union(replace_at(kids[0], rest, replacement), kids[1])
        return Union(kids[0], replace_at(kids[1], rest, replacement))
    raise EvaluationError(f"cannot descend into {type(expr).__name__}")


def conjoin_predicates(*predicates: Predicate) -> Predicate:
    """Merge predicates the way reassociation merges operator labels."""
    return conjunction(predicates)
