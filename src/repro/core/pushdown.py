"""Restriction placement — Section 4's "as early as possible".

The paper: "Unlike joins, we do not usually want to explore alternative
positions [for restrictions], but instead just want to do restrictions as
early as possible", subject to the one genuine obstacle: "Difficulties
arise only with moving restrictions past a null-supplied operand."

The legality rules implemented here:

* a single-relation restriction conjunct moves freely through joins and
  through the *preserved* operand of an outerjoin ("it is well known that
  a restriction on the preserved operand of an outerjoin can be moved
  into the outerjoin predicate" — moving it below is the same identity);
* it must NOT cross into a null-supplied operand.  When its relation
  lives there, the conjunct parks directly above that outerjoin — unless
  it is strong, in which case :func:`repro.core.simplify.simplify_outerjoins`
  has already converted the outerjoin to a join and the path is clear;
* multi-relation conjuncts sink to the lowest subtree containing all the
  relations they reference, under the same outerjoin barrier.

``push_restrictions`` therefore composes with the Section-4 simplifier:
run the simplifier first, then push — the pair realizes the paper's whole
Section-4 pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.algebra.predicates import Predicate
from repro.algebra.schema import SchemaRegistry
from repro.core.expressions import (
    BinaryOp,
    Expression,
    FullOuterJoin,
    Join,
    LeftOuterJoin,
    Rel,
    Restrict,
    RightOuterJoin,
)


@dataclass
class PushdownReport:
    """Where each restriction conjunct ended up."""

    query: Expression
    placements: List[str] = field(default_factory=list)
    blocked: List[str] = field(default_factory=list)

    @property
    def fully_pushed(self) -> bool:
        """True when every conjunct reached a leaf (sits on a base relation)."""
        return not self.blocked


def collect_restrictions(query: Expression) -> Tuple[Expression, List[Predicate]]:
    """Strip top-of-tree Restrict nodes, returning (core, conjuncts).

    Matches the paper's analyzed case: "all Restrictions ... in the
    original query occur after all outerjoins have been performed."
    """
    conjuncts: List[Predicate] = []
    node = query
    while isinstance(node, Restrict):
        conjuncts.extend(node.predicate.conjuncts())
        node = node.child
    return node, conjuncts


def _barred_relations(node: Expression) -> frozenset[str]:
    """Relations unreachable by pushdown: inside some null-supplied operand."""
    if isinstance(node, Rel):
        return frozenset()
    barred: frozenset[str] = frozenset()
    for child in node.children():
        barred |= _barred_relations(child)
    if isinstance(node, (LeftOuterJoin, RightOuterJoin)):
        barred |= node.null_supplied().relations()
    elif isinstance(node, FullOuterJoin):
        barred |= node.relations()  # both sides are null-suppliable
    return barred


def _place(
    node: Expression,
    conjunct: Predicate,
    refs: frozenset[str],
    report: PushdownReport,
) -> Expression:
    """Sink one conjunct as deep as legality allows."""
    if isinstance(node, Rel):
        report.placements.append(f"{conjunct!r} -> on base relation {node.name}")
        return Restrict(node, conjunct)

    if isinstance(node, BinaryOp):
        left_rels = node.left.relations()
        right_rels = node.right.relations()
        into_left = refs <= left_rels
        into_right = refs <= right_rels
        if isinstance(node, Join):
            if into_left:
                return node.with_parts(_place(node.left, conjunct, refs, report), node.right)
            if into_right:
                return node.with_parts(node.left, _place(node.right, conjunct, refs, report))
        elif isinstance(node, (LeftOuterJoin, RightOuterJoin)):
            preserved = node.preserved()
            if refs <= preserved.relations():
                # Descending the preserved side is always legal; inner
                # outerjoins (if any) park the conjunct recursively.
                new_preserved = _place(preserved, conjunct, refs, report)
                if isinstance(node, LeftOuterJoin):
                    return node.with_parts(new_preserved, node.right)
                return node.with_parts(node.left, new_preserved)
            report.blocked.append(
                f"{conjunct!r} parked above {node.to_infix()}: its relation(s) "
                f"{sorted(refs & (node.null_supplied().relations() | _barred_relations(node)))} "
                "can be null-supplied below"
            )
            return Restrict(node, conjunct)
        elif isinstance(node, FullOuterJoin):
            report.blocked.append(
                f"{conjunct!r} parked above {node.to_infix()}: both operands of a "
                "two-sided outerjoin are null-suppliable"
            )
            return Restrict(node, conjunct)
        # Conjunct straddles both operands of a join (or could not descend):
        # it stays here.
        report.placements.append(f"{conjunct!r} -> above {node.to_infix()}")
        return Restrict(node, conjunct)

    # Unary wrappers (already-placed restricts, projections): stay above.
    report.placements.append(f"{conjunct!r} -> above {node.to_infix()}")
    return Restrict(node, conjunct)


def push_restrictions(query: Expression, registry: SchemaRegistry) -> PushdownReport:
    """Push every top-level restriction conjunct as deep as legal.

    Run :func:`repro.core.simplify.simplify_outerjoins` first so strong
    conjuncts have already converted their outerjoins; what remains
    blocked afterwards is blocked for a real semantic reason (e.g. an
    ``IS NULL`` probe for padded tuples).
    """
    core, conjuncts = collect_restrictions(query)
    report = PushdownReport(query=core)
    tree = core
    for conjunct in conjuncts:
        refs = frozenset(registry.owners(conjunct.attributes()))
        tree = _place(tree, conjunct, refs, report)
    report.query = tree
    return report
