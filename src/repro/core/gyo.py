"""GYO reduction: α-acyclicity detection and join-tree certificates.

A query hypergraph has one hyperedge per relation; its vertices are the
*join-attribute equivalence classes* induced by the equality conjuncts of
the query's edge predicates (``R.a = S.a`` puts ``R.a`` and ``S.a`` in
one class).  The Graham/Yu–Özsoyoğlu (GYO) reduction repeatedly removes
an *ear* — a hyperedge whose vertices shared with the rest are covered by
a single *witness* hyperedge — and succeeds on exactly the α-acyclic
hypergraphs.  The removal order is a certificate: replaying it validates
acyclicity in linear time, and the (ear, witness) pairs are the edges of
a join tree.

On top of the generic reducer, :func:`join_tree_of` bridges from a
:class:`~repro.core.graph.QueryGraph`: it builds the class hypergraph
from the hash-decomposable equality keys of every edge predicate, decides
acyclicity with GYO, materializes the tree as a maximum-weight spanning
tree of the intersection graph (Maier's characterization, breaking ties
toward query-graph edges so every tree edge carries a real predicate),
classifies leftover graph edges as *chords*, and roots the tree.  Outerjoin graphs take the fast path only under the paper's own
safety certificate: Theorem 1 must hold (nice + strong), the tree must
use every graph edge (no chords), and the root must lie in the join core
so each outerjoin edge is oriented preserved-parent → null-supplied-child
— exactly the orientation under which the full reducer's semijoins are
legal (a preserved side is never reduced by its null-supplied child).
Anything else returns ``None`` and the optimizer keeps its DP plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.algebra.kernels import decompose_join_predicate
from repro.algebra.predicates import Predicate
from repro.algebra.schema import SchemaRegistry
from repro.core.graph import QueryGraph
from repro.core.reorderability import theorem1_applies

#: A hypergraph: edge name -> frozenset of vertex identifiers.
Hypergraph = Mapping[str, FrozenSet[str]]


@dataclass(frozen=True)
class EarStep:
    """One GYO removal: ``edge`` was an ear witnessed by ``witness``.

    ``witness is None`` means the edge shared no vertex with any other
    remaining edge (the last edge of a connected component).
    """

    edge: str
    witness: Optional[str]


@dataclass(frozen=True)
class GYOCertificate:
    """A complete ear ordering — a replayable proof of α-acyclicity."""

    steps: Tuple[EarStep, ...]

    def tree_edges(self) -> Tuple[Tuple[str, str], ...]:
        """The ``(child, parent)`` pairs of the induced join forest."""
        return tuple(
            (s.edge, s.witness) for s in self.steps if s.witness is not None
        )

    def validates(self, hyperedges: Hypergraph) -> bool:
        """Replay the ear ordering against a hypergraph.

        Checks every step was a legal ear removal at its point in the
        sequence and that the reduction consumed the whole hypergraph.
        This is the certificate's *definition of validity*; the property
        tests replay certificates against a brute-force oracle.
        """
        remaining: Dict[str, FrozenSet[str]] = dict(hyperedges)
        for step in self.steps:
            if step.edge not in remaining:
                return False
            verts = remaining.pop(step.edge)
            shared = verts & frozenset().union(*remaining.values()) if remaining else frozenset()
            if step.witness is None:
                if shared:
                    return False
            else:
                if step.witness not in remaining:
                    return False
                if not shared <= remaining[step.witness]:
                    return False
        return not remaining


def gyo_reduce(hyperedges: Hypergraph) -> Optional[GYOCertificate]:
    """Run the GYO reduction; return an ear-ordering certificate or ``None``.

    ``None`` means the hypergraph is *not* α-acyclic (the reduction got
    stuck with edges remaining).  GYO is confluent — removing any ear
    never destroys reducibility — so the greedy sorted-order scan below
    is a complete (and deterministic) decision procedure.
    """
    remaining: Dict[str, FrozenSet[str]] = dict(hyperedges)
    steps: List[EarStep] = []
    while remaining:
        progressed = False
        for name in sorted(remaining):
            verts = remaining[name]
            others = [e for e in remaining if e != name]
            shared = verts & frozenset().union(*(remaining[e] for e in others)) if others else frozenset()
            if not shared:
                steps.append(EarStep(name, None))
                del remaining[name]
                progressed = True
                break
            witnesses = sorted(w for w in others if shared <= remaining[w])
            if witnesses:
                steps.append(EarStep(name, witnesses[0]))
                del remaining[name]
                progressed = True
                break
        if not progressed:
            return None
    return GYOCertificate(tuple(steps))


# ---------------------------------------------------------------------------
# QueryGraph bridge: class hypergraph, join tree, chords, rooting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinTreeEdge:
    """A rooted join-tree edge; ``kind`` is ``"join"`` or ``"oj"``.

    For ``kind == "oj"`` the parent is always the preserved endpoint and
    the child the null-supplied one (enforced by :func:`join_tree_of`).
    """

    parent: str
    child: str
    predicate: Predicate
    kind: str


@dataclass(frozen=True)
class JoinTree:
    """A rooted join tree over a query graph's relations.

    ``order`` is a preorder traversal starting at ``root``; ``edges`` is
    aligned with ``order[1:]`` (``edges[i].child == order[i + 1]`` and
    the parent appears earlier in ``order``).  ``chords`` are graph edges
    not used by the tree — correct to defer to the join phase for pure
    join graphs, and required to be empty for outerjoin graphs.
    """

    root: str
    order: Tuple[str, ...]
    edges: Tuple[JoinTreeEdge, ...]
    chords: Tuple[Tuple[str, str, Predicate], ...]
    certificate: GYOCertificate

    def parent_edge(self, node: str) -> Optional[JoinTreeEdge]:
        """The edge connecting ``node`` to its parent (``None`` for the root)."""
        for edge in self.edges:
            if edge.child == node:
                return edge
        return None


class _UnionFind:
    """Tiny union-find over attribute names (path-halving, union by size)."""

    def __init__(self) -> None:
        self.parent: Dict[str, str] = {}
        self.size: Dict[str, int] = {}

    def find(self, x: str) -> str:
        parent = self.parent
        if x not in parent:
            parent[x] = x
            self.size[x] = 1
            return x
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def class_hypergraph(
    graph: QueryGraph, registry: SchemaRegistry
) -> Optional[Hypergraph]:
    """The attribute-equivalence-class hypergraph of a query graph.

    Every edge predicate must decompose into at least one cross-scheme
    equality key pair (the hash kernels' condition); otherwise there is
    no semijoin key and the fast path does not apply (``None``).
    """
    uf = _UnionFind()
    edge_keys: List[Tuple[str, Tuple[str, ...]]] = []
    all_edges = [
        (tuple(sorted(pair)), p) for pair, p in graph.join_edges.items()
    ] + [((u, v), p) for (u, v), p in graph.oj_edges.items()]
    for (u, v), predicate in all_edges:
        left_keys, right_keys, _residual = decompose_join_predicate(
            predicate, registry[u].attributes, registry[v].attributes
        )
        if not left_keys:
            return None
        for a, b in zip(left_keys, right_keys):
            uf.union(a, b)
        edge_keys.append((u, left_keys))
        edge_keys.append((v, right_keys))
    verts: Dict[str, set] = {node: set() for node in graph.nodes}
    for node, keys in edge_keys:
        for attr in keys:
            verts[node].add(uf.find(attr))
    return {node: frozenset(vs) for node, vs in verts.items()}


def _graph_edge(
    graph: QueryGraph, u: str, v: str
) -> Optional[Tuple[str, str, Predicate, str]]:
    """Look up the graph edge between two nodes as (parent, child, p, kind).

    For join edges the (u, v) order passed in is kept; for outerjoin
    edges the arrow's own orientation (preserved, null-supplied) is
    returned regardless of argument order.
    """
    pair = frozenset({u, v})
    if pair in graph.join_edges:
        return (u, v, graph.join_edges[pair], "join")
    if (u, v) in graph.oj_edges:
        return (u, v, graph.oj_edges[(u, v)], "oj")
    if (v, u) in graph.oj_edges:
        return (v, u, graph.oj_edges[(v, u)], "oj")
    return None


def join_tree_of(
    graph: QueryGraph, registry: SchemaRegistry
) -> Optional[JoinTree]:
    """Build a rooted join tree for the graph, or ``None`` for DP fallback.

    The acyclicity *decision* is :func:`gyo_reduce` on the class
    hypergraph; the tree itself comes from Maier's characterization — a
    maximum-weight spanning tree of the intersection graph (edge weight
    = shared vertex-class count) of an α-acyclic hypergraph is a join
    tree.  Kruskal breaks weight ties in favor of query-graph edges so
    every tree edge carries a real predicate (a star's hub-leaf edges
    beat the leaf-leaf pairs that share the same key class).

    Returns ``None`` when: the graph is empty or disconnected; some edge
    predicate has no equality key; the class hypergraph is cyclic; the
    spanning tree was forced through a non-graph pair (no predicate to
    evaluate); or — for outerjoin graphs — Theorem 1 does not certify
    free reorderability, a chord remains, or some outerjoin edge cannot
    be oriented preserved-parent from the chosen root.
    """
    if not graph.nodes or not graph.is_connected():
        return None
    hyper = class_hypergraph(graph, registry)
    if hyper is None:
        return None
    certificate = gyo_reduce(hyper)
    if certificate is None:
        return None

    names = sorted(graph.nodes)
    candidates: List[Tuple[int, int, str, str]] = []
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            weight = len(hyper[u] & hyper[v])
            if weight == 0:
                continue
            graph_tie_break = 0 if v in graph.neighbors(u) else 1
            candidates.append((-weight, graph_tie_break, u, v))
    candidates.sort()
    uf = _UnionFind()
    chosen_pairs: List[Tuple[str, str]] = []
    for _negw, _pref, u, v in candidates:
        if uf.find(u) != uf.find(v):
            uf.union(u, v)
            chosen_pairs.append((u, v))
    if len(chosen_pairs) != len(names) - 1:
        return None
    for u, v in chosen_pairs:
        if v not in graph.neighbors(u):
            return None

    undirected: Dict[str, set] = {node: set() for node in graph.nodes}
    for u, v in chosen_pairs:
        undirected[u].add(v)
        undirected[v].add(u)

    # Running-intersection sanity check: every vertex class must induce a
    # connected subtree.  Maier guarantees this for acyclic hypergraphs;
    # the recheck costs O(classes * nodes) and turns any surprise into a
    # clean DP fallback instead of a wrong plan.
    for cls in frozenset().union(*hyper.values()) if hyper else ():
        members = {n for n in names if cls in hyper[n]}
        start = next(iter(members))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nb in undirected[node]:
                if nb in members and nb not in seen:
                    seen.add(nb)
                    stack.append(nb)
        if seen != members:
            return None

    tree_pairs = {frozenset({u, v}) for u, v in chosen_pairs}
    chords = tuple(
        (min(pair), max(pair), graph.join_edges[pair])
        for pair in sorted(graph.join_edges, key=sorted)
        if pair not in tree_pairs
    )

    if graph.oj_edges:
        if chords:
            return None
        for (u, v) in graph.oj_edges:
            if frozenset({u, v}) not in tree_pairs:
                return None
        if not theorem1_applies(graph, registry).freely_reorderable:
            return None
        core = sorted(n for n in graph.nodes if not graph.oj_in_edges(n))
        if not core:
            return None
        root = core[0]
    else:
        root = min(graph.nodes)

    order: List[str] = []
    edges: List[JoinTreeEdge] = []
    stack = [(root, None)]
    seen = set()
    while stack:
        node, via = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        if via is not None:
            edges.append(via)
        for child in sorted(undirected[node], reverse=True):
            if child in seen:
                continue
            looked = _graph_edge(graph, node, child)
            if looked is None:
                return None
            a, b, predicate, kind = looked
            if kind == "oj" and a != node:
                # The arrow points at the parent: the null-supplied side
                # would sit above its preserved side — not a legal rooting.
                return None
            stack.append((child, JoinTreeEdge(node, child, predicate, kind)))
    if len(order) != len(graph.nodes):
        return None
    return JoinTree(
        root=root,
        order=tuple(order),
        edges=tuple(edges),
        chords=chords,
        certificate=certificate,
    )
