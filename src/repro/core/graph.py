"""Query graphs and the ``graph(Q)`` construction of Section 1.2.

A query graph has one node per relation mentioned in the query.  For each
*join* operator, each predicate conjunct adds one undirected edge between
the two ground relations it references; parallel edges between the same
pair are collapsed into a single edge labeled with the conjunction
("we will treat them as if they were a single conjunct").  Each *outerjoin*
operator adds one directed edge, pointing at the null-supplied relation,
labeled with the entire outerjoin predicate.

The graph is *undefined* — :class:`~repro.util.errors.GraphUndefinedError`
— when a join conjunct references attributes of more or fewer than two
ground relations, or when an outerjoin predicate does not reference exactly
two ground relations.

Unlike an expression tree, the graph "does not directly possess an
evaluation rule" (Section 1.3); evaluation always goes through one of its
implementing trees (:mod:`repro.core.enumeration`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.predicates import Predicate, conjunction
from repro.algebra.schema import SchemaRegistry
from repro.core.bitset import BitsetIndex
from repro.core.expressions import (
    Expression,
    Join,
    LeftOuterJoin,
    Rel,
    RightOuterJoin,
)
from repro.util.errors import GraphUndefinedError

#: An undirected edge endpoint pair.
NodePair = FrozenSet[str]
#: A directed outerjoin edge: (preserved, null_supplied).
Arrow = Tuple[str, str]


class QueryGraph:
    """An immutable join/outerjoin query graph.

    ``join_edges`` maps the unordered node pair to the (collapsed)
    predicate; ``oj_edges`` maps the directed pair
    ``(preserved, null_supplied)`` to the outerjoin predicate.
    """

    __slots__ = ("_nodes", "_join_edges", "_oj_edges", "_bits")

    def __init__(
        self,
        nodes: Iterable[str],
        join_edges: Mapping[NodePair, Predicate] | None = None,
        oj_edges: Mapping[Arrow, Predicate] | None = None,
    ):
        self._nodes = frozenset(nodes)
        self._join_edges: Dict[NodePair, Predicate] = dict(join_edges or {})
        self._oj_edges: Dict[Arrow, Predicate] = dict(oj_edges or {})
        self._bits: Optional["BitsetIndex"] = None
        for pair in self._join_edges:
            if len(pair) != 2 or not pair <= self._nodes:
                raise GraphUndefinedError(f"bad join edge {sorted(pair)}")
        for (u, v) in self._oj_edges:
            if u == v or u not in self._nodes or v not in self._nodes:
                raise GraphUndefinedError(f"bad outerjoin edge {(u, v)}")
            if frozenset({u, v}) in self._join_edges:
                raise GraphUndefinedError(
                    f"parallel join and outerjoin edges between {u!r} and {v!r}"
                )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        join: Iterable[Tuple[str, str, Predicate]] = (),
        oj: Iterable[Tuple[str, str, Predicate]] = (),
        isolated: Iterable[str] = (),
    ) -> "QueryGraph":
        """Build a graph from edge triples; OJ triples are (preserved, null_supplied, p)."""
        nodes: set[str] = set(isolated)
        join_edges: Dict[NodePair, List[Predicate]] = {}
        for u, v, p in join:
            nodes.update((u, v))
            join_edges.setdefault(frozenset({u, v}), []).append(p)
        oj_edges: Dict[Arrow, Predicate] = {}
        for u, v, p in oj:
            nodes.update((u, v))
            arrow = (u, v)
            if arrow in oj_edges:
                raise GraphUndefinedError(f"duplicate outerjoin edge {arrow}")
            oj_edges[arrow] = p
        collapsed = {pair: conjunction(preds) for pair, preds in join_edges.items()}
        return cls(nodes, collapsed, oj_edges)

    # -- basic accessors -------------------------------------------------------

    @property
    def nodes(self) -> FrozenSet[str]:
        return self._nodes

    @property
    def join_edges(self) -> Mapping[NodePair, Predicate]:
        return self._join_edges

    @property
    def oj_edges(self) -> Mapping[Arrow, Predicate]:
        return self._oj_edges

    def edge_count(self) -> int:
        return len(self._join_edges) + len(self._oj_edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryGraph):
            return NotImplemented
        return (
            self._nodes == other._nodes
            and self._join_edges == other._join_edges
            and self._oj_edges == other._oj_edges
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._nodes,
                frozenset(self._join_edges.items()),
                frozenset(self._oj_edges.items()),
            )
        )

    def __repr__(self) -> str:
        joins = ", ".join("-".join(sorted(p)) for p in self._join_edges)
        ojs = ", ".join(f"{u}→{v}" for (u, v) in self._oj_edges)
        parts = [p for p in (joins, ojs) if p]
        return f"QueryGraph(nodes={sorted(self._nodes)}; {'; '.join(parts)})"

    def to_dot(self, name: str = "query_graph") -> str:
        """Graphviz DOT rendering: join edges undirected (drawn plain),
        outerjoin edges as arrows toward the null-supplied relation."""
        lines = [f"graph {name} {{"]
        for node in sorted(self._nodes):
            lines.append(f'  "{node}";')
        for pair, p in sorted(self._join_edges.items(), key=lambda kv: sorted(kv[0])):
            u, v = sorted(pair)
            lines.append(f'  "{u}" -- "{v}" [label="{p!r}"];')
        for (u, v), p in sorted(self._oj_edges.items()):
            lines.append(f'  "{u}" -- "{v}" [label="{p!r}", dir=forward, arrowhead=normal];')
        lines.append("}")
        return "\n".join(lines)

    def describe(self) -> str:
        """Multi-line human-readable listing of nodes and labeled edges."""
        lines = [f"nodes: {', '.join(sorted(self._nodes))}"]
        for pair, p in sorted(self._join_edges.items(), key=lambda kv: sorted(kv[0])):
            u, v = sorted(pair)
            lines.append(f"  {u} - {v}   [{p!r}]")
        for (u, v), p in sorted(self._oj_edges.items()):
            lines.append(f"  {u} → {v}   [{p!r}]")
        return "\n".join(lines)

    # -- bitset acceleration ------------------------------------------------------

    def bitset_index(self) -> BitsetIndex:
        """The node<->bit table for this graph (built once, cached).

        All subset-exponential machinery (connected-subset enumeration,
        IT/DP partition enumeration, cut legality) runs on the integer
        masks of this index; frozensets only appear at API boundaries.
        """
        if self._bits is None:
            self._bits = BitsetIndex(self)
        return self._bits

    # -- adjacency ---------------------------------------------------------------

    def neighbors(self, node: str) -> FrozenSet[str]:
        """All neighbors, ignoring edge kind and direction."""
        out: set[str] = set()
        for pair in self._join_edges:
            if node in pair:
                out |= pair - {node}
        for (u, v) in self._oj_edges:
            if u == node:
                out.add(v)
            elif v == node:
                out.add(u)
        return frozenset(out)

    def join_neighbors(self, node: str) -> FrozenSet[str]:
        out: set[str] = set()
        for pair in self._join_edges:
            if node in pair:
                out |= pair - {node}
        return frozenset(out)

    def oj_in_edges(self, node: str) -> List[Arrow]:
        """Outerjoin edges directed *into* ``node`` (node is null-supplied)."""
        return [(u, v) for (u, v) in self._oj_edges if v == node]

    def oj_out_edges(self, node: str) -> List[Arrow]:
        return [(u, v) for (u, v) in self._oj_edges if u == node]

    # -- connectivity ---------------------------------------------------------------

    def is_connected(self, within: Optional[FrozenSet[str]] = None) -> bool:
        """Connectivity of the whole graph or of an induced node subset."""
        universe = self._nodes if within is None else frozenset(within)
        if not universe:
            return False
        start = next(iter(universe))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nb in self.neighbors(node):
                if nb in universe and nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        return seen == universe

    def induced(self, nodes: Iterable[str]) -> "QueryGraph":
        """The induced subgraph on a node subset."""
        keep = frozenset(nodes)
        if not keep <= self._nodes:
            raise GraphUndefinedError(f"nodes {sorted(frozenset(nodes) - self._nodes)} not in graph")
        join_edges = {pair: p for pair, p in self._join_edges.items() if pair <= keep}
        oj_edges = {(u, v): p for (u, v), p in self._oj_edges.items() if u in keep and v in keep}
        return QueryGraph(keep, join_edges, oj_edges)

    def connected_components(self) -> List[FrozenSet[str]]:
        remaining = set(self._nodes)
        comps: List[FrozenSet[str]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for nb in self.neighbors(node):
                    if nb in remaining and nb not in seen:
                        seen.add(nb)
                        frontier.append(nb)
            comps.append(frozenset(seen))
            remaining -= seen
        return comps

    # -- cuts -----------------------------------------------------------------------

    def cut(
        self, side_a: FrozenSet[str], side_b: FrozenSet[str]
    ) -> Tuple[List[Tuple[NodePair, Predicate]], List[Tuple[Arrow, Predicate]]]:
        """Edges crossing between two disjoint node sets.

        Returns ``(crossing_join_edges, crossing_oj_edges)``.  Section 3.1:
        the edges of the conjuncts of an operator determine a cut in G.
        """
        joins = [
            (pair, p)
            for pair, p in self._join_edges.items()
            if len(pair & side_a) == 1 and len(pair & side_b) == 1
        ]
        ojs = [
            ((u, v), p)
            for (u, v), p in self._oj_edges.items()
            if (u in side_a and v in side_b) or (u in side_b and v in side_a)
        ]
        return joins, ojs

    def undirected_edge_pairs(self) -> Iterator[NodePair]:
        """All edges as unordered pairs (both kinds)."""
        yield from self._join_edges
        for (u, v) in self._oj_edges:
            yield frozenset({u, v})


# ---------------------------------------------------------------------------
# graph(Q)
# ---------------------------------------------------------------------------


def graph_of(query: Expression, registry: SchemaRegistry) -> QueryGraph:
    """Compute ``graph(Q)`` per Section 1.2, or raise ``GraphUndefinedError``.

    Only Join/Outerjoin queries have graphs; Restrict/Project must be
    simplified away first (Section 4 treats them separately).
    """
    join_lists: Dict[NodePair, List[Predicate]] = {}
    oj_edges: Dict[Arrow, Predicate] = {}

    def visit(node: Expression) -> None:
        if isinstance(node, Rel):
            if node.name not in registry:
                raise GraphUndefinedError(f"relation {node.name!r} not registered")
            return
        if isinstance(node, Join):
            conjuncts = node.predicate.conjuncts()
            if not conjuncts:
                raise GraphUndefinedError(
                    "join without a predicate (Cartesian product) has no graph edge"
                )
            for conjunct in conjuncts:
                endpoints = _conjunct_endpoints(conjunct, node, registry, kind="join conjunct")
                join_lists.setdefault(frozenset(endpoints), []).append(conjunct)
        elif isinstance(node, (LeftOuterJoin, RightOuterJoin)):
            endpoints = _conjunct_endpoints(node.predicate, node, registry, kind="outerjoin predicate")
            preserved_side = node.preserved().relations()
            preserved_rel = endpoints[0] if endpoints[0] in preserved_side else endpoints[1]
            null_rel = endpoints[1] if preserved_rel == endpoints[0] else endpoints[0]
            arrow = (preserved_rel, null_rel)
            if arrow in oj_edges:
                raise GraphUndefinedError(f"duplicate outerjoin edge {arrow}")
            oj_edges[arrow] = node.predicate
        else:
            raise GraphUndefinedError(
                f"graph(Q) is defined only for Join/Outerjoin queries; found "
                f"{type(node).__name__}"
            )
        for child in node.children():
            visit(child)

    visit(query)
    nodes = query.relations()
    join_edges = {pair: conjunction(preds) for pair, preds in join_lists.items()}
    return QueryGraph(nodes, join_edges, oj_edges)


def _conjunct_endpoints(
    predicate: Predicate, node, registry: SchemaRegistry, kind: str
) -> Tuple[str, str]:
    """The two ground relations a conjunct references, validated across sides."""
    owners = sorted(registry.owners(predicate.attributes()))
    if len(owners) != 2:
        raise GraphUndefinedError(
            f"{kind} {predicate!r} references {len(owners)} ground relations "
            f"({owners}); the graph requires exactly two"
        )
    left_rels = node.left.relations()
    right_rels = node.right.relations()
    a, b = owners
    in_left = (a in left_rels, b in left_rels)
    in_right = (a in right_rels, b in right_rels)
    if not ((in_left[0] and in_right[1]) or (in_left[1] and in_right[0])):
        raise GraphUndefinedError(
            f"{kind} {predicate!r} must reference one relation from each operand"
        )
    return a, b
