"""Counterexample search and minimization.

When a query graph is *not* freely reorderable, the most convincing
artifact is a concrete witness: two implementing trees and a database on
which they disagree — ideally as small as the paper's own examples (one
tuple per relation in Examples 2 and 3).  This module finds witnesses by
randomized search and then *shrinks* them greedily, deleting one tuple at
a time while the disagreement survives.

The bench suite uses this to regenerate Example 2's and Example 3's
minimal counterexamples mechanically, rather than by transcription.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Tuple

from repro.algebra.comparison import bag_equal
from repro.algebra.relation import Database, Relation
from repro.algebra.schema import SchemaRegistry
from repro.core.expressions import Expression
from repro.core.enumeration import implementing_trees
from repro.core.graph import QueryGraph
from repro.datagen.random_db import random_database
from repro.util.rng import make_rng


@dataclass
class Witness:
    """Two trees and a database on which they evaluate differently."""

    first: Expression
    second: Expression
    database: Database

    def total_tuples(self) -> int:
        return sum(len(self.database[name]) for name in self.database)

    def still_disagrees(self) -> bool:
        return not bag_equal(self.first.eval(self.database), self.second.eval(self.database))

    def describe(self) -> str:
        lines = [
            f"trees: {self.first.to_infix()}  vs  {self.second.to_infix()}",
            f"database ({self.total_tuples()} tuples):",
        ]
        for name in sorted(self.database):
            rows = ", ".join(repr(dict(r)) for r in self.database[name])
            lines.append(f"  {name} = [{rows}]")
        return "\n".join(lines)


def find_witness(
    graph: QueryGraph,
    registry: SchemaRegistry,
    attempts: int = 200,
    seed: int | random.Random | None = None,
    max_trees: int = 64,
    domain: int = 3,
) -> Optional[Witness]:
    """Randomized search for a disagreement witness.

    Draws random databases and evaluates all (bounded) implementing trees
    until two of them differ.  Returns ``None`` when no witness is found
    — which, for nice+strong graphs, Theorem 1 says is the only outcome.
    """
    rng = make_rng(seed)
    trees = list(implementing_trees(graph))[:max_trees]
    if len(trees) < 2:
        return None
    schemas = {name: list(registry[name]) for name in graph.nodes}
    for _ in range(attempts):
        db = random_database(schemas, seed=rng, max_rows=3, domain=domain)
        results = [(tree, tree.eval(db)) for tree in trees]
        reference_tree, reference = results[0]
        for tree, outcome in results[1:]:
            if not bag_equal(reference, outcome):
                return Witness(first=reference_tree, second=tree, database=db)
    return None


def shrink_witness(witness: Witness) -> Witness:
    """Greedy delta-debugging: drop tuples while the disagreement survives.

    Repeatedly tries to remove each single tuple (and, as a finishing
    pass, each attribute-value tweak is left to the caller); terminates at
    a 1-minimal database — removing any one remaining tuple would make the
    trees agree.
    """
    current = witness
    changed = True
    while changed:
        changed = False
        for name in sorted(current.database):
            relation = current.database[name]
            rows = list(relation)
            for index in range(len(rows)):
                candidate_rows = rows[:index] + rows[index + 1 :]
                candidate_db = current.database.with_relation(
                    name, Relation(relation.schema, candidate_rows)
                )
                candidate = Witness(current.first, current.second, candidate_db)
                if candidate.still_disagrees():
                    current = candidate
                    changed = True
                    break
            if changed:
                break
    return current


def minimal_witness(
    graph: QueryGraph,
    registry: SchemaRegistry,
    attempts: int = 200,
    seed: int | random.Random | None = None,
) -> Optional[Witness]:
    """Find and shrink a witness in one call."""
    witness = find_witness(graph, registry, attempts=attempts, seed=seed)
    if witness is None:
        return None
    return shrink_witness(witness)


def disagreeing_tree_pairs(
    graph: QueryGraph,
    registry: SchemaRegistry,
    database: Database,
    max_trees: int = 64,
) -> List[Tuple[Expression, Expression]]:
    """All tree pairs that differ on one given database (for reporting)."""
    trees = list(implementing_trees(graph))[:max_trees]
    evaluated = [(t, t.eval(database)) for t in trees]
    out: List[Tuple[Expression, Expression]] = []
    for (t1, r1), (t2, r2) in combinations(evaluated, 2):
        if not bag_equal(r1, r2):
            out.append((t1, t2))
    return out
