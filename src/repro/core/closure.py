"""Closures of implementing trees under basic transforms (Lemmas 2 and 3).

Lemma 3 states that for a "nice" graph, a sequence of BTs maps any IT to
any other IT of the same graph.  This module computes such closures by
breadth-first search and, constructively, the BT *sequence* between two
given trees — which is how the test suite machine-checks Lemma 3 (the
closure under all BTs equals the full IT set) and Theorem 1 (the closure
under *result-preserving* BTs alone already covers the full IT set when
the graph is nice and the predicates are strong).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.algebra.schema import SchemaRegistry
from repro.core.expressions import Expression
from repro.core.transforms import (
    BasicTransform,
    applicable_transforms,
    apply_transform,
    canonicalize,
    classify_transform,
)


@dataclass
class ClosureResult:
    """The set of trees reachable from a seed by BTs.

    ``trees`` maps each reached tree to the transform-edge that first
    produced it, enabling path reconstruction; ``truncated`` reports that
    ``max_size`` stopped the search early.
    """

    seed: Expression
    trees: Dict[Expression, Optional[Tuple[Expression, BasicTransform]]] = field(
        default_factory=dict
    )
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.trees)

    def __contains__(self, tree: Expression) -> bool:
        return canonicalize(tree) in self.trees

    def path_to(self, target: Expression) -> List[BasicTransform]:
        """The BT sequence from the seed to ``target`` (Lemma 3's witness)."""
        goal = canonicalize(target)
        if goal not in self.trees:
            raise KeyError(f"{target!r} was not reached from the seed")
        steps: List[BasicTransform] = []
        cur = goal
        while True:
            parent_edge = self.trees[cur]
            if parent_edge is None:
                break
            parent, transform = parent_edge
            steps.append(transform)
            cur = parent
        steps.reverse()
        return steps


def bt_closure(
    seed: Expression,
    registry: SchemaRegistry,
    preserving_only: bool = False,
    max_size: Optional[int] = None,
) -> ClosureResult:
    """BFS over the BT graph starting from ``seed``.

    With ``preserving_only=True`` only transforms classified as result
    preserving (Section 2's identities, with strongness preconditions) are
    followed — this is "the closure under those BTs [which] is a set of
    trees that evaluate to the same result" (Section 3).
    """
    start = canonicalize(seed)
    result = ClosureResult(seed=start)
    result.trees[start] = None
    queue: deque[Expression] = deque([start])
    while queue:
        tree = queue.popleft()
        for transform in applicable_transforms(tree, registry):
            if preserving_only:
                verdict = classify_transform(tree, transform, registry)
                if not verdict.preserving:
                    continue
            successor = canonicalize(apply_transform(tree, transform, registry))
            if successor in result.trees:
                continue
            if max_size is not None and len(result.trees) >= max_size:
                result.truncated = True
                return result
            result.trees[successor] = (tree, transform)
            queue.append(successor)
    return result


def bt_path(
    source: Expression,
    target: Expression,
    registry: SchemaRegistry,
    preserving_only: bool = False,
    max_size: Optional[int] = None,
) -> Optional[List[BasicTransform]]:
    """Shortest BT sequence mapping ``source`` to ``target``, or ``None``.

    BFS guarantees minimality in number of transforms.  For nice graphs
    Lemma 3 promises a path always exists within the (finite) IT space.
    """
    goal = canonicalize(target)
    start = canonicalize(source)
    if start == goal:
        return []
    result = ClosureResult(seed=start)
    result.trees[start] = None
    queue: deque[Expression] = deque([start])
    while queue:
        tree = queue.popleft()
        for transform in applicable_transforms(tree, registry):
            if preserving_only:
                verdict = classify_transform(tree, transform, registry)
                if not verdict.preserving:
                    continue
            successor = canonicalize(apply_transform(tree, transform, registry))
            if successor in result.trees:
                continue
            result.trees[successor] = (tree, transform)
            if successor == goal:
                return result.path_to(goal)
            if max_size is not None and len(result.trees) >= max_size:
                return None
            queue.append(successor)
    return None


def preserving_equivalence_class(
    seed: Expression, registry: SchemaRegistry, max_size: Optional[int] = None
) -> Set[Expression]:
    """The set of trees provably result-equal to the seed via identities."""
    return set(bt_closure(seed, registry, preserving_only=True, max_size=max_size).trees)


def equivalence_classes(graph, registry: SchemaRegistry) -> List[Set[Expression]]:
    """Partition a graph's full IT space into preserving-BT classes.

    On a nice+strong graph this returns **one** class covering every
    implementing tree — that is Theorem 1.  On a non-reorderable graph the
    space fractures; the class count quantifies *how* non-reorderable the
    graph is (each class is internally safe to reorder, classes must not
    be mixed).  Example 2's graph, for instance, splits its 8 trees into
    classes whose members the paper's identities can still interconvert.
    """
    from repro.core.enumeration import implementing_trees

    remaining: Set[Expression] = {canonicalize(t) for t in implementing_trees(graph)}
    classes: List[Set[Expression]] = []
    while remaining:
        seed = next(iter(sorted(remaining, key=repr)))
        cls = preserving_equivalence_class(seed, registry)
        # Guard against closure drift (the closure must stay inside the
        # IT space; anything else is a bug upstream).
        cls &= remaining | cls
        classes.append(cls)
        remaining -= cls
    classes.sort(key=len, reverse=True)
    return classes
