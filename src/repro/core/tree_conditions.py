"""Section 6.3's conjecture: reorderability conditions on the *tree*.

The paper: "Thus far, our conditions for reorderability applied to
graphs; we conjecture that there are also simple conditions on the
expression trees.  For example, the null-supplied input of an operand
should not be created by a regular join, nor involved later as an operand
of a regular join."

Making this precise requires reading "the null-supplied input" as the
*relation being padded* — the ground relation an outerjoin's predicate
references on its null-supplied side.  With that reading the conjecture
becomes two purely tree-local conditions over a join/outerjoin query Q:

* **T1 — never joined:** a padded relation is not referenced by any
  regular-join predicate anywhere in the tree (neither below the
  outerjoin, where the join would have "created" the null-supplied input,
  nor above it, where the relation would be "involved later as an operand
  of a regular join");

* **T2 — padded once:** no relation is the padded target of two
  different outerjoin operators.

These are exactly Lemma 1's forbidden patterns ``X → Y − Z`` and
``X → Y ← Z`` transported to the tree (join-predicate references are join
edges; padded targets are outerjoin-edge heads).  Lemma 1's third
condition — no outerjoin cycles — needs no tree-side counterpart because
a graph with an outerjoin cycle has **no implementing trees at all**: a
legal operator cut crosses either join edges only or exactly one
outerjoin edge, and neither can ever separate the cycle's nodes.

The test suite and ``benchmarks/bench_section63_tree_conditions.py``
machine-check the resulting theorem: *an implementing tree satisfies
T1 + T2 iff its query graph is nice* — so an optimizer can decide
reorderability on whichever representation it holds, which is the point
of the paper's conjecture.

(The reproduction initially tried a more "structural" reading — the
null-supplied *operand subtree* must not be rooted by a join — which is
necessary but not sufficient: a non-nice graph admits trees where the
offending join hides below further outerjoins inside the operand.  The
padded-relation reading is the one that closes the equivalence.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from repro.algebra.schema import SchemaRegistry
from repro.core.expressions import (
    Expression,
    Join,
    LeftOuterJoin,
    RightOuterJoin,
)


@dataclass(frozen=True)
class TreeConditionViolation:
    """One violation of the Section-6.3 tree conditions."""

    kind: str  # "padded-relation-joined" | "double-padding"
    relation: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} on {self.relation}: {self.detail}"


def padded_target(node: Expression, registry: SchemaRegistry) -> str:
    """The ground relation an outerjoin pads (its predicate's null-side ref).

    Well-defined for valid join/outerjoin queries: the outerjoin predicate
    references exactly two ground relations, one per operand.
    """
    assert isinstance(node, (LeftOuterJoin, RightOuterJoin))
    null_rels = node.null_supplied().relations()
    owners = registry.owners(node.predicate.attributes())
    targets = owners & null_rels
    # graph(Q) validity guarantees exactly one.
    return next(iter(targets))


def tree_violations(
    query: Expression, registry: SchemaRegistry
) -> List[TreeConditionViolation]:
    """All violations of conditions T1 and T2 in the tree."""
    padded_by: Dict[str, int] = {}
    joined: FrozenSet[str] = frozenset()
    join_refs: set[str] = set()

    for _path, node in query.nodes():
        if isinstance(node, (LeftOuterJoin, RightOuterJoin)):
            target = padded_target(node, registry)
            padded_by[target] = padded_by.get(target, 0) + 1
        elif isinstance(node, Join):
            join_refs |= registry.owners(node.predicate.attributes())
    joined = frozenset(join_refs)

    found: List[TreeConditionViolation] = []
    for relation, count in sorted(padded_by.items()):
        if relation in joined:
            found.append(
                TreeConditionViolation(
                    kind="padded-relation-joined",
                    relation=relation,
                    detail=(
                        "an outerjoin pads this relation while a regular-join "
                        "predicate references it (the tree form of X → Y − Z)"
                    ),
                )
            )
        if count > 1:
            found.append(
                TreeConditionViolation(
                    kind="double-padding",
                    relation=relation,
                    detail=(
                        f"{count} outerjoin operators pad this relation "
                        "(the tree form of X → Y ← Z)"
                    ),
                )
            )
    return found


def satisfies_tree_conditions(query: Expression, registry: SchemaRegistry) -> bool:
    """The Section-6.3 conjecture's tree-level test (T1 and T2)."""
    return not tree_violations(query, registry)
