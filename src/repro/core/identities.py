"""Executable forms of the paper's identities 1–13 and the Figure-3 proof.

Section 2 proves a toolbox of algebraic identities over join (−),
antijoin (▷/◁), outerjoin (→/←) and padded union, then assembles them
into the three reassociation rules for outerjoins (identities 11–13).
Each identity is represented here as an object that *builds both sides*
from concrete relations and predicates using the algebra operators, so
that the test- and benchmark-suites can check them over randomized
databases, and check that dropping a precondition (strongness for 8, 9
and 12) actually produces counterexamples.

Notation notes:

* ``X ◁ Y`` is the symmetric antijoin, ``Y ▷ X``.
* Unions and comparisons follow the padding convention of Section 2.1;
  identities 8 and 9 apply to the *padded* antijoin term produced when a
  join distributes over such a union — the padding is what makes the
  strong predicate reject every tuple.
* Identity 1 optionally carries a third predicate ``P_xz``; when present,
  the corresponding query graph has a cycle, and the conjunct must move
  between operators during reassociation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.algebra.comparison import RelationDiff, bag_equal, explain_difference
from repro.algebra.operators import antijoin, join, outerjoin, union_padded
from repro.algebra.predicates import Predicate, conjunction
from repro.algebra.relation import Relation
from repro.util.errors import PredicateError


@dataclass
class TriSetting:
    """Three relations and the predicates linking them.

    ``pxy`` links X and Y; ``pyz`` links Y and Z; ``pxz`` (identity 1 only)
    closes the cycle between X and Z.
    """

    x: Relation
    y: Relation
    z: Relation
    pxy: Predicate
    pyz: Predicate
    pxz: Optional[Predicate] = None

    def y_attrs_of(self, predicate: Predicate) -> frozenset[str]:
        """Attributes of Y that a predicate references (strongness probes)."""
        return predicate.attributes() & self.y.scheme


def _padded_antijoin(x: Relation, y: Relation, p: Predicate) -> Relation:
    """``X ▷ Y`` padded to ``sch(X) ∪ sch(Y)`` (the union-convention form)."""
    return antijoin(x, y, p).pad_to(x.schema.union(y.schema))


@dataclass(frozen=True)
class Identity:
    """One paper identity, as a pair of relation-level evaluators."""

    number: str
    title: str
    lhs: Callable[[TriSetting], Relation]
    rhs: Callable[[TriSetting], Relation]
    precondition: Callable[[TriSetting], bool]
    precondition_text: str = "none"

    def check(self, setting: TriSetting) -> Tuple[bool, RelationDiff]:
        left = self.lhs(setting)
        right = self.rhs(setting)
        diff = explain_difference(left, right)
        return diff.equal, diff

    def holds(self, setting: TriSetting) -> bool:
        return bag_equal(self.lhs(setting), self.rhs(setting))


def _no_precondition(setting: TriSetting) -> bool:
    return True


def _pyz_strong_wrt_y(setting: TriSetting) -> bool:
    return setting.pyz.is_strong(setting.y_attrs_of(setting.pyz))


# -- identity 1: join reassociation (optionally with a cycle conjunct) -------


def _id1_lhs(s: TriSetting) -> Relation:
    outer = conjunction([p for p in (s.pyz, s.pxz) if p is not None])
    return join(join(s.x, s.y, s.pxy), s.z, outer)


def _id1_rhs(s: TriSetting) -> Relation:
    outer = conjunction([p for p in (s.pxy, s.pxz) if p is not None])
    return join(s.x, join(s.y, s.z, s.pyz), outer)


# -- identities 2, 3: antijoin reassociation ---------------------------------


def _id2_lhs(s: TriSetting) -> Relation:
    return antijoin(join(s.x, s.y, s.pxy), s.z, s.pyz)


def _id2_rhs(s: TriSetting) -> Relation:
    return join(s.x, antijoin(s.y, s.z, s.pyz), s.pxy)


def _id3_lhs(s: TriSetting) -> Relation:
    # (X ◁ Y) ▷ Z  with  X ◁ Y = Y ▷ X.
    return antijoin(antijoin(s.y, s.x, s.pxy), s.z, s.pyz)


def _id3_rhs(s: TriSetting) -> Relation:
    # X ◁ (Y ▷ Z) = (Y ▷ Z) ▷ X.
    return antijoin(antijoin(s.y, s.z, s.pyz), s.x, s.pxy)


# -- identities 4-6: distribution over (padded) union ------------------------
#
# The union operands play the role of two fragments of the same logical
# input; we instantiate them as the join/antijoin split of Y against Z so
# the identities are exercised exactly the way Figure 3 uses them.


def _id4_lhs(s: TriSetting) -> Relation:
    fragment = union_padded(join(s.y, s.z, s.pyz), _padded_antijoin(s.y, s.z, s.pyz))
    return join(s.x, fragment, s.pxy)


def _id4_rhs(s: TriSetting) -> Relation:
    return union_padded(
        join(s.x, join(s.y, s.z, s.pyz), s.pxy),
        join(s.x, _padded_antijoin(s.y, s.z, s.pyz), s.pxy),
    )


def _id5_lhs(s: TriSetting) -> Relation:
    fragment = union_padded(join(s.x, s.y, s.pxy), _padded_antijoin(s.x, s.y, s.pxy))
    return join(fragment, s.z, s.pyz)


def _id5_rhs(s: TriSetting) -> Relation:
    return union_padded(
        join(join(s.x, s.y, s.pxy), s.z, s.pyz),
        join(_padded_antijoin(s.x, s.y, s.pxy), s.z, s.pyz),
    )


def _id6_lhs(s: TriSetting) -> Relation:
    fragment = union_padded(join(s.x, s.y, s.pxy), _padded_antijoin(s.x, s.y, s.pxy))
    return antijoin(fragment, s.z, s.pyz)


def _id6_rhs(s: TriSetting) -> Relation:
    return union_padded(
        antijoin(join(s.x, s.y, s.pxy), s.z, s.pyz),
        antijoin(_padded_antijoin(s.x, s.y, s.pxy), s.z, s.pyz),
    )


# -- identity 7: pseudo-distributivity of antijoin ----------------------------


def _id7_lhs(s: TriSetting) -> Relation:
    return antijoin(s.x, s.y, s.pxy)


def _id7_rhs(s: TriSetting) -> Relation:
    fragment = union_padded(join(s.y, s.z, s.pyz), _padded_antijoin(s.y, s.z, s.pyz))
    return antijoin(s.x, fragment, s.pxy)


# -- identities 8, 9: strong predicates against padded antijoins --------------


def _id8_lhs(s: TriSetting) -> Relation:
    return join(_padded_antijoin(s.x, s.y, s.pxy), s.z, s.pyz)


def _id8_rhs(s: TriSetting) -> Relation:
    return Relation(_id8_lhs(s).schema)  # the empty relation on the same scheme


def _id9_lhs(s: TriSetting) -> Relation:
    return antijoin(_padded_antijoin(s.x, s.y, s.pxy), s.z, s.pyz)


def _id9_rhs(s: TriSetting) -> Relation:
    return _padded_antijoin(s.x, s.y, s.pxy)


# -- identity 10: outerjoin = join ∪ antijoin ---------------------------------


def _id10_lhs(s: TriSetting) -> Relation:
    return outerjoin(s.x, s.y, s.pxy)


def _id10_rhs(s: TriSetting) -> Relation:
    return union_padded(join(s.x, s.y, s.pxy), antijoin(s.x, s.y, s.pxy))


# -- identities 11-13: the outerjoin reassociation rules ----------------------


def _id11_lhs(s: TriSetting) -> Relation:
    return outerjoin(join(s.x, s.y, s.pxy), s.z, s.pyz)


def _id11_rhs(s: TriSetting) -> Relation:
    return join(s.x, outerjoin(s.y, s.z, s.pyz), s.pxy)


def _id12_lhs(s: TriSetting) -> Relation:
    return outerjoin(outerjoin(s.x, s.y, s.pxy), s.z, s.pyz)


def _id12_rhs(s: TriSetting) -> Relation:
    return outerjoin(s.x, outerjoin(s.y, s.z, s.pyz), s.pxy)


def _id13_lhs(s: TriSetting) -> Relation:
    # (X ← Y) → Z  with  X ← Y = OJ(Y, X).
    return outerjoin(outerjoin(s.y, s.x, s.pxy), s.z, s.pyz)


def _id13_rhs(s: TriSetting) -> Relation:
    # X ← (Y → Z) = OJ(Y → Z, X).
    return outerjoin(outerjoin(s.y, s.z, s.pyz), s.x, s.pxy)


# -- reversal mirrors of 11 and 12 (Section 2.1's symmetric forms) ------------
#
# Identity 13 has no useful mirror: flipping its arrows produces the
# forbidden X → Y ← Z pattern, which is not an identity at all.


def _id11m_lhs(s: TriSetting) -> Relation:
    # (X ← Y) − Z  with  X ← Y = OJ(Y, X).
    return join(outerjoin(s.y, s.x, s.pxy), s.z, s.pyz)


def _id11m_rhs(s: TriSetting) -> Relation:
    # X ← (Y − Z) = OJ(Y − Z, X).
    return outerjoin(join(s.y, s.z, s.pyz), s.x, s.pxy)


def _id12m_lhs(s: TriSetting) -> Relation:
    # (X ← Y) ← Z = OJ(Z, OJ(Y, X)).
    return outerjoin(s.z, outerjoin(s.y, s.x, s.pxy), s.pyz)


def _id12m_rhs(s: TriSetting) -> Relation:
    # X ← (Y ← Z) = OJ(OJ(Z, Y), X).
    return outerjoin(outerjoin(s.z, s.y, s.pyz), s.x, s.pxy)


def _pxy_strong_wrt_y(setting: TriSetting) -> bool:
    return setting.pxy.is_strong(setting.y_attrs_of(setting.pxy))


IDENTITIES: Dict[str, Identity] = {
    "1": Identity(
        "1",
        "join reassociation (with optional cycle conjunct migration)",
        _id1_lhs,
        _id1_rhs,
        _no_precondition,
    ),
    "2": Identity(
        "2", "(X − Y) ▷ Z = X − (Y ▷ Z)", _id2_lhs, _id2_rhs, _no_precondition
    ),
    "3": Identity(
        "3", "(X ◁ Y) ▷ Z = X ◁ (Y ▷ Z)", _id3_lhs, _id3_rhs, _no_precondition
    ),
    "4": Identity(
        "4", "X − (Y ∪ Z) = (X − Y) ∪ (X − Z)", _id4_lhs, _id4_rhs, _no_precondition
    ),
    "5": Identity(
        "5", "(Y ∪ Z) − X = (Y − X) ∪ (Z − X)", _id5_lhs, _id5_rhs, _no_precondition
    ),
    "6": Identity(
        "6", "(Y ∪ Z) ▷ X = (Y ▷ X) ∪ (Z ▷ X)", _id6_lhs, _id6_rhs, _no_precondition
    ),
    "7": Identity(
        "7",
        "X ▷ Y = X ▷ (Y − Z ∪ Y ▷ Z)  (pseudo-distributivity)",
        _id7_lhs,
        _id7_rhs,
        _no_precondition,
    ),
    "8": Identity(
        "8",
        "(X ▷ Y) − Z = ∅  (padded; P_yz strong w.r.t. Y)",
        _id8_lhs,
        _id8_rhs,
        _pyz_strong_wrt_y,
        precondition_text="P_yz strong w.r.t. Y",
    ),
    "9": Identity(
        "9",
        "(X ▷ Y) ▷ Z = X ▷ Y  (padded; P_yz strong w.r.t. Y)",
        _id9_lhs,
        _id9_rhs,
        _pyz_strong_wrt_y,
        precondition_text="P_yz strong w.r.t. Y",
    ),
    "10": Identity(
        "10", "X → Y = X − Y ∪ X ▷ Y", _id10_lhs, _id10_rhs, _no_precondition
    ),
    "11": Identity(
        "11", "(X − Y) → Z = X − (Y → Z)", _id11_lhs, _id11_rhs, _no_precondition
    ),
    "12": Identity(
        "12",
        "(X → Y) → Z = X → (Y → Z)  (P_yz strong w.r.t. Y)",
        _id12_lhs,
        _id12_rhs,
        _pyz_strong_wrt_y,
        precondition_text="P_yz strong w.r.t. Y",
    ),
    "13": Identity(
        "13", "(X ← Y) → Z = X ← (Y → Z)", _id13_lhs, _id13_rhs, _no_precondition
    ),
    "11m": Identity(
        "11m",
        "(X ← Y) − Z = X ← (Y − Z)  (reversal mirror of 11)",
        _id11m_lhs,
        _id11m_rhs,
        _no_precondition,
    ),
    "12m": Identity(
        "12m",
        "(X ← Y) ← Z = X ← (Y ← Z)  (mirror of 12; P_xy strong w.r.t. Y)",
        _id12m_lhs,
        _id12m_rhs,
        _pxy_strong_wrt_y,
        precondition_text="P_xy strong w.r.t. Y",
    ),
}


def check_identity(number: str, setting: TriSetting) -> Tuple[bool, RelationDiff]:
    """Evaluate one identity on a concrete setting.

    Raises :class:`PredicateError` if the setting violates the identity's
    precondition — preconditions must be checked (or deliberately violated)
    by the caller via ``IDENTITIES[n].precondition``.
    """
    identity = IDENTITIES[number]
    if not identity.precondition(setting):
        raise PredicateError(
            f"identity {number} requires: {identity.precondition_text}; "
            "use Identity.check directly to study precondition violations"
        )
    return identity.check(setting)


# ---------------------------------------------------------------------------
# Figure 3: the step-by-step algebraic proof of identity 12
# ---------------------------------------------------------------------------


def identity12_proof_steps(setting: TriSetting) -> List[Tuple[str, Relation]]:
    """Evaluate every line of Figure 3's proof of identity 12.

    Returns the eight stages, each with the equation(s) justifying the
    step.  When ``P_yz`` is strong w.r.t. Y, all eight relations are
    bag-equal; the benchmark suite asserts exactly that, replaying the
    paper's proof on randomized data.
    """
    x, y, z, pxy, pyz = setting.x, setting.y, setting.z, setting.pxy, setting.pyz

    xy_oj = outerjoin(x, y, pxy)
    xy_jn = join(x, y, pxy)
    xy_aj = _padded_antijoin(x, y, pxy)
    yz_jn = join(y, z, pyz)
    yz_aj = _padded_antijoin(y, z, pyz)
    yz_oj = outerjoin(y, z, pyz)

    steps: List[Tuple[str, Relation]] = []
    steps.append(("(X → Y) → Z", outerjoin(xy_oj, z, pyz)))
    steps.append(
        (
            "expand outer outerjoin (eqn 10): (X→Y) − Z ∪ (X→Y) ▷ Z",
            union_padded(join(xy_oj, z, pyz), antijoin(xy_oj, z, pyz)),
        )
    )
    inner_union = union_padded(xy_jn, xy_aj)
    steps.append(
        (
            "expand inner outerjoin (eqn 10): (X−Y ∪ X▷Y) − Z ∪ (X−Y ∪ X▷Y) ▷ Z",
            union_padded(join(inner_union, z, pyz), antijoin(inner_union, z, pyz)),
        )
    )
    steps.append(
        (
            "distribute (eqn 5, 6) then drop strong-padded terms (eqn 8, 9): "
            "(X−Y) − Z ∪ (X−Y) ▷ Z ∪ X ▷ Y",
            union_padded(
                union_padded(join(xy_jn, z, pyz), antijoin(xy_jn, z, pyz)), xy_aj
            ),
        )
    )
    steps.append(
        (
            "reassociate join and antijoin (eqn 1, 2): "
            "X − (Y − Z) ∪ X − (Y ▷ Z) ∪ X ▷ Y",
            union_padded(
                union_padded(join(x, yz_jn, pxy), join(x, yz_aj, pxy)), xy_aj
            ),
        )
    )
    steps.append(
        (
            "complete by pseudo-distributivity of antijoin (eqn 7): "
            "X − (Y − Z) ∪ X − (Y ▷ Z) ∪ X ▷ (Y − Z ∪ Y ▷ Z)",
            union_padded(
                union_padded(join(x, yz_jn, pxy), join(x, yz_aj, pxy)),
                antijoin(x, union_padded(yz_jn, yz_aj), pxy),
            ),
        )
    )
    steps.append(
        (
            "factor out join from union (eqn 4): "
            "X − (Y−Z ∪ Y▷Z) ∪ X ▷ (Y−Z ∪ Y▷Z)",
            union_padded(
                join(x, union_padded(yz_jn, yz_aj), pxy),
                antijoin(x, union_padded(yz_jn, yz_aj), pxy),
            ),
        )
    )
    steps.append(("rewrite as outerjoin (eqn 10): X → (Y → Z)", outerjoin(x, yz_oj, pxy)))
    return steps
