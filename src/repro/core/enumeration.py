"""Enumerating the implementing trees (ITs) of a query graph.

Section 1.3: "An algebraic expression (i.e., query) is called an
implementing tree of graph G if G = graph(Q)."  ITs correspond only to
connectivity-preserving parenthesizations: every operator's operand sets
induce connected subgraphs, and joins without graph edges (Cartesian
products) are excluded.

The enumeration works top-down over *cuts*.  For a connected node set
``V``, every IT's root operator determines an ordered partition
``(V1, V2)`` of ``V`` with both sides connected and at least one crossing
edge; conversely each such partition yields root operators:

* if every crossing edge is a join edge, the root is a regular join whose
  predicate is the conjunction of the crossing conjuncts (a multi-edge
  cut is the paper's "general cutset");
* if the cut consists of exactly one outerjoin edge ``u → v``, the root is
  an outerjoin preserving the side containing ``u`` (``LeftOuterJoin`` when
  ``u ∈ V1``, the symmetric ``RightOuterJoin`` when ``u ∈ V2``);
* a cut mixing join and outerjoin edges, or containing two or more
  outerjoin edges, supports no single operator — such partitions implement
  nothing.

Left/right operand orders are distinct trees (related by the reversal
basic transform), matching Section 3.2 where reversal is a transform
*between* ITs rather than an identification of them.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.predicates import Predicate, conjunction
from repro.core.expressions import Expression, Join, LeftOuterJoin, Rel, RightOuterJoin
from repro.core.graph import QueryGraph
from repro.tools import instrumentation
from repro.util.errors import GraphUndefinedError
from repro.util.fastpath import fast_enabled


def _root_operator(
    graph: QueryGraph, side_a: FrozenSet[str], side_b: FrozenSet[str]
) -> Optional[Tuple[str, Predicate]]:
    """Which operator (if any) can sit on the cut (side_a | side_b)?

    Returns ``(kind, predicate)`` with kind in {"join", "loj", "roj"}, or
    ``None`` when the cut supports no operator.
    """
    if fast_enabled():
        index = graph.bitset_index()
        return index.cut_operator(index.mask_of(side_a), index.mask_of(side_b))
    join_cut, oj_cut = graph.cut(side_a, side_b)
    if oj_cut and join_cut:
        return None
    if len(oj_cut) > 1:
        return None
    if oj_cut:
        (arrow, predicate) = oj_cut[0]
        preserved, _null_supplied = arrow
        kind = "loj" if preserved in side_a else "roj"
        return kind, predicate
    if join_cut:
        predicate = conjunction([p for _pair, p in join_cut])
        return "join", predicate
    return None


#: Public alias: the optimizer's DP uses the same cut-legality rule.
def root_operator(graph, side_a, side_b):
    """Public wrapper of the cut rule (see :func:`_root_operator`)."""
    return _root_operator(graph, side_a, side_b)


def _ordered_partitions(
    graph: QueryGraph, nodes: FrozenSet[str]
) -> Iterator[Tuple[FrozenSet[str], FrozenSet[str]]]:
    """All ordered partitions of ``nodes`` into two connected halves.

    The bitset fast path yields the same pairs in the same order as the
    naive bitmask loop (ascending submasks; bit order = sorted node
    order), so enumeration results and tie-breaking downstream are
    identical on both paths.
    """
    if fast_enabled():
        index = graph.bitset_index()
        for sub, complement in index.ordered_partitions(index.mask_of(nodes)):
            yield index.set_of(sub), index.set_of(complement)
        return
    members = sorted(nodes)
    n = len(members)
    # Enumerate non-empty proper subsets by bitmask; each ordered pair
    # (V1, V2) appears exactly once because masks cover both directions.
    for mask in range(1, (1 << n) - 1):
        side_a = frozenset(members[i] for i in range(n) if mask & (1 << i))
        side_b = nodes - side_a
        if graph.is_connected(side_a) and graph.is_connected(side_b):
            yield side_a, side_b


def implementing_trees(graph: QueryGraph) -> Iterator[Expression]:
    """Yield every implementing tree of the graph.

    The number of ITs grows super-exponentially with the node count; use
    :func:`count_implementing_trees` when only the size is needed.
    """
    if not graph.nodes:
        raise GraphUndefinedError("empty graph has no implementing trees")
    if not graph.is_connected():
        raise GraphUndefinedError(
            "disconnected graphs have no implementing trees (Cartesian products "
            "are excluded from ITs)"
        )
    trees = _trees_for(graph, graph.nodes, cache={})
    instrumentation.bump("trees_enumerated", len(trees))
    from repro.observability.spans import active_span

    span = active_span()
    if span is not None:
        span.counters["trees_enumerated"] += len(trees)
    yield from trees


def _trees_for(
    graph: QueryGraph,
    nodes: FrozenSet[str],
    cache: Dict[FrozenSet[str], List[Expression]],
) -> List[Expression]:
    if nodes in cache:
        return cache[nodes]
    if len(nodes) == 1:
        result: List[Expression] = [Rel(next(iter(nodes)))]
        cache[nodes] = result
        return result
    result = []
    for side_a, side_b in _ordered_partitions(graph, nodes):
        op = _root_operator(graph, side_a, side_b)
        if op is None:
            continue
        kind, predicate = op
        for left in _trees_for(graph, side_a, cache):
            for right in _trees_for(graph, side_b, cache):
                if kind == "join":
                    result.append(Join(left, right, predicate))
                elif kind == "loj":
                    result.append(LeftOuterJoin(left, right, predicate))
                else:
                    result.append(RightOuterJoin(left, right, predicate))
    cache[nodes] = result
    return result


def count_implementing_trees(graph: QueryGraph) -> int:
    """Count ITs without materializing them (memoized over node subsets)."""
    if not graph.nodes:
        return 0
    if not graph.is_connected():
        return 0
    counts: Dict[FrozenSet[str], int] = {}

    def count(nodes: FrozenSet[str]) -> int:
        if len(nodes) == 1:
            return 1
        if nodes in counts:
            return counts[nodes]
        total = 0
        for side_a, side_b in _ordered_partitions(graph, nodes):
            if _root_operator(graph, side_a, side_b) is None:
                continue
            total += count(side_a) * count(side_b)
        counts[nodes] = total
        return total

    return count(graph.nodes)


def sample_implementing_tree(graph: QueryGraph, rng) -> Expression:
    """Draw one IT uniformly at random (uses the counting recursion).

    ``rng`` is a :class:`random.Random`.  Sampling is uniform over all ITs
    because each ordered partition's subtree-count product weights the
    choice.
    """
    if not graph.is_connected():
        raise GraphUndefinedError("cannot sample an IT of a disconnected graph")
    counts: Dict[FrozenSet[str], int] = {}

    def count(nodes: FrozenSet[str]) -> int:
        if len(nodes) == 1:
            return 1
        if nodes in counts:
            return counts[nodes]
        total = 0
        for side_a, side_b in _ordered_partitions(graph, nodes):
            if _root_operator(graph, side_a, side_b) is None:
                continue
            total += count(side_a) * count(side_b)
        counts[nodes] = total
        return total

    def sample(nodes: FrozenSet[str]) -> Expression:
        if len(nodes) == 1:
            return Rel(next(iter(nodes)))
        total = count(nodes)
        if total == 0:
            raise GraphUndefinedError(f"node set {sorted(nodes)} has no implementing trees")
        pick = rng.randrange(total)
        for side_a, side_b in _ordered_partitions(graph, nodes):
            op = _root_operator(graph, side_a, side_b)
            if op is None:
                continue
            weight = count(side_a) * count(side_b)
            if pick >= weight:
                pick -= weight
                continue
            kind, predicate = op
            left = sample(side_a)
            right = sample(side_b)
            if kind == "join":
                return Join(left, right, predicate)
            if kind == "loj":
                return LeftOuterJoin(left, right, predicate)
            return RightOuterJoin(left, right, predicate)
        raise AssertionError("unreachable: weights summed to total")

    return sample(graph.nodes)


def is_implementing_tree(query: Expression, graph: QueryGraph, registry) -> bool:
    """Does ``graph(Q)`` equal the given graph?  (Definition, Section 1.3.)"""
    from repro.core.graph import graph_of  # local import avoids cycle

    try:
        return graph_of(query, registry) == graph
    except GraphUndefinedError:
        return False
