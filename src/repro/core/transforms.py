"""Basic transforms (BTs) on implementing trees — Section 3.2.

Two transforms modify an implementing tree while preserving its graph:

**Reversal** exchanges the left and right subtrees of a node, replacing the
operator by its symmetric form (``X → Y`` becomes ``Y ← X``).  Reversals
are always result preserving.

**Reassociation** exchanges a parent/child pair:
``((Q1 ⊙1 Q2) ⊙2 Q3)`` becomes ``(Q1 ⊙1 (Q2 ⊙2 Q3))`` — here called a
*right rotation*; the inverse direction is a *left rotation*.  If a
conjunct of ``⊙2`` references ``Q1`` it must migrate to ``⊙1`` (identity 1;
the query graph has a cycle), which is legal only when both operators are
regular joins.  The transform is applicable only if the migrating
operator's predicate references some relation in the middle subtree
``Q2``, and only if the operator left behind still has a predicate (no
Cartesian products in ITs).

A reassociation is *result preserving* when the corresponding
three-operand identity of Section 2 holds; :func:`classify_rotation`
pattern-matches the operator pair against identities 1, 11, 12, 13 (and
their reversal mirrors), including identity 12's strongness precondition.
The two non-preserving patterns are exactly the ones Lemma 2 names:
``[X → Y − Z]`` and ``[X → Y ← Z]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.algebra.predicates import Predicate, conjunction
from repro.algebra.schema import SchemaRegistry
from repro.core.expressions import (
    BinaryOp,
    Expression,
    Join,
    LeftOuterJoin,
    Path,
    Rel,
    RightOuterJoin,
    replace_at,
    subtree_at,
)
from repro.util.errors import NotApplicableError

#: The operator kinds that participate in join/outerjoin implementing trees.
IT_OPERATORS = (Join, LeftOuterJoin, RightOuterJoin)


@dataclass(frozen=True)
class BasicTransform:
    """A BT instance: what to do and where in the tree.

    ``kind`` is one of ``"reversal"``, ``"rotate_right"`` (maps
    ``((A ⊙1 B) ⊙2 C)`` to ``(A ⊙1 (B ⊙2 C))``), or ``"rotate_left"``
    (the inverse).  ``path`` addresses the node the transform acts on.
    """

    kind: str
    path: Path

    def __str__(self) -> str:
        where = "/".join(self.path) if self.path else "root"
        return f"{self.kind}@{where}"


@dataclass(frozen=True)
class RotationClassification:
    """Verdict on whether a reassociation BT is result preserving.

    ``preserving`` reflects the Section-2 identities; ``identity`` names
    the identity that justifies (or whose precondition fails for) the
    rotation; ``reason`` is a human-readable explanation.  A ``False``
    verdict means "not guaranteed by the identities" — on particular data
    the two trees may still coincide, which is why Lemma 2 is about
    guarantees over *all* ground-relation values.
    """

    preserving: bool
    identity: Optional[str]
    reason: str


def reverse_node(node: BinaryOp) -> BinaryOp:
    """The reversal BT at a single node (always result preserving)."""
    if isinstance(node, Join):
        return Join(node.right, node.left, node.predicate)
    if isinstance(node, LeftOuterJoin):
        return RightOuterJoin(node.right, node.left, node.predicate)
    if isinstance(node, RightOuterJoin):
        return LeftOuterJoin(node.right, node.left, node.predicate)
    raise NotApplicableError(f"reversal undefined for {type(node).__name__}")


def _split_predicate(
    predicate: Predicate,
    outer_rels: FrozenSet[str],
    registry: SchemaRegistry,
) -> Tuple[List[Predicate], List[Predicate]]:
    """Partition conjuncts into (staying, migrating-to-the-other-operator).

    A conjunct migrates when it references a relation of ``outer_rels``
    (the subtree the rotation moves the operator away from).
    """
    stay: List[Predicate] = []
    move: List[Predicate] = []
    for conjunct in predicate.conjuncts():
        owners = registry.owners(conjunct.attributes())
        if owners & outer_rels:
            move.append(conjunct)
        else:
            stay.append(conjunct)
    return stay, move


def rotate_right(node: BinaryOp, registry: SchemaRegistry) -> BinaryOp:
    """``((A ⊙1 B) ⊙2 C)  →  (A ⊙1 (B ⊙2 C))``.

    Raises :class:`NotApplicableError` when the transform's preconditions
    (Section 3.2) fail.
    """
    if not isinstance(node, IT_OPERATORS):
        raise NotApplicableError(f"{type(node).__name__} is not an IT operator")
    inner = node.left
    if not isinstance(inner, IT_OPERATORS):
        raise NotApplicableError("left child is not a binary IT operator")
    a, b, c = inner.left, inner.right, node.right

    stay, move = _split_predicate(node.predicate, a.relations(), registry)
    if not stay:
        raise NotApplicableError(
            "predicate of the migrating operator references no relation of the "
            "middle subtree; rotation would create a Cartesian product"
        )
    if move:
        if not (isinstance(node, Join) and isinstance(inner, Join)):
            raise NotApplicableError(
                "a conjunct must move between operators (identity 1), which is "
                "legal only when both operators are regular joins"
            )
        new_outer_pred = conjunction([inner.predicate, *move])
    else:
        new_outer_pred = inner.predicate
    new_inner = node.with_parts(b, c, conjunction(stay))
    return inner.with_parts(a, new_inner, new_outer_pred)


def rotate_left(node: BinaryOp, registry: SchemaRegistry) -> BinaryOp:
    """``(A ⊙1 (B ⊙2 C))  →  ((A ⊙1 B) ⊙2 C)`` — the inverse rotation."""
    if not isinstance(node, IT_OPERATORS):
        raise NotApplicableError(f"{type(node).__name__} is not an IT operator")
    inner = node.right
    if not isinstance(inner, IT_OPERATORS):
        raise NotApplicableError("right child is not a binary IT operator")
    a, b, c = node.left, inner.left, inner.right

    stay, move = _split_predicate(node.predicate, c.relations(), registry)
    if not stay:
        raise NotApplicableError(
            "predicate of the migrating operator references no relation of the "
            "middle subtree; rotation would create a Cartesian product"
        )
    if move:
        if not (isinstance(node, Join) and isinstance(inner, Join)):
            raise NotApplicableError(
                "a conjunct must move between operators (identity 1), which is "
                "legal only when both operators are regular joins"
            )
        new_inner_pred = conjunction([inner.predicate, *move])
    else:
        new_inner_pred = inner.predicate
    new_outer = node.with_parts(a, b, conjunction(stay))
    return inner.with_parts(new_outer, c, new_inner_pred)


def apply_transform(
    query: Expression, transform: BasicTransform, registry: SchemaRegistry
) -> Expression:
    """Apply one BT at its path and return the new tree."""
    node = subtree_at(query, transform.path)
    if not isinstance(node, BinaryOp):
        raise NotApplicableError(f"no binary operator at path {transform.path}")
    if transform.kind == "reversal":
        replacement: Expression = reverse_node(node)
    elif transform.kind == "rotate_right":
        replacement = rotate_right(node, registry)
    elif transform.kind == "rotate_left":
        replacement = rotate_left(node, registry)
    else:
        raise NotApplicableError(f"unknown transform kind {transform.kind!r}")
    return replace_at(query, transform.path, replacement)


def applicable_transforms(
    query: Expression, registry: SchemaRegistry
) -> Iterator[BasicTransform]:
    """All BTs applicable anywhere in the tree.

    Applicability is decided by actually attempting the rotation, so the
    exact Section-3.2 side conditions (predicate must reference the middle
    subtree; conjunct moves only between regular joins; no Cartesian
    products) are enforced in one place.
    """
    for path, node in query.nodes():
        if not isinstance(node, IT_OPERATORS):
            continue
        yield BasicTransform("reversal", path)
        if isinstance(node.left, IT_OPERATORS):
            try:
                rotate_right(node, registry)
            except NotApplicableError:
                pass
            else:
                yield BasicTransform("rotate_right", path)
        if isinstance(node.right, IT_OPERATORS):
            try:
                rotate_left(node, registry)
            except NotApplicableError:
                pass
            else:
                yield BasicTransform("rotate_left", path)


# ---------------------------------------------------------------------------
# Result-preserving classification (Lemma 2's case analysis)
# ---------------------------------------------------------------------------


def _attrs_of(rels: FrozenSet[str], registry: SchemaRegistry) -> FrozenSet[str]:
    out: set[str] = set()
    for r in rels:
        out |= registry[r].attributes
    return frozenset(out)


def classify_rotation(
    op1: BinaryOp,
    op2: BinaryOp,
    middle: Expression,
    registry: SchemaRegistry,
) -> RotationClassification:
    """Classify the identity behind ``(A ⊙1 B) ⊙2 C  =  A ⊙1 (B ⊙2 C)``.

    ``op1`` is the operator adjacent to ``A`` and ``B`` (with its
    predicate), ``op2`` the one adjacent to ``C``; ``middle`` is the
    subtree ``B``.  The same table serves right rotations and left
    rotations because the underlying identity is an equality.

    The strongness conditions follow Section 2.3: identity 12 requires the
    second outerjoin predicate to be strong with respect to the attributes
    it references from the middle subtree (whose tuples the first outerjoin
    may have null-padded).  Example 3 shows the condition is not optional.
    """
    t1, t2 = type(op1), type(op2)
    p1, p2 = op1.predicate, op2.predicate
    middle_attrs = _attrs_of(middle.relations(), registry)

    if t1 is Join and t2 is Join:
        return RotationClassification(True, "identity 1", "joins reassociate freely")
    if t1 is Join and t2 is LeftOuterJoin:
        return RotationClassification(
            True, "identity 11", "(X − Y) → Z = X − (Y → Z) holds unconditionally"
        )
    if t1 is RightOuterJoin and t2 is Join:
        return RotationClassification(
            True,
            "identity 11 (mirror)",
            "(X ← Y) − Z = X ← (Y − Z): the join touches the preserved side",
        )
    if t1 is RightOuterJoin and t2 is LeftOuterJoin:
        return RotationClassification(
            True, "identity 13", "(X ← Y) → Z = X ← (Y → Z) holds unconditionally"
        )
    if t1 is LeftOuterJoin and t2 is LeftOuterJoin:
        probe = p2.attributes() & middle_attrs
        if p2.is_strong(probe):
            return RotationClassification(
                True,
                "identity 12",
                "outer predicate is strong w.r.t. the middle subtree it references",
            )
        return RotationClassification(
            False,
            "identity 12",
            f"outer predicate {p2!r} is not strong w.r.t. {sorted(probe)} "
            "(Example 3's failure mode)",
        )
    if t1 is RightOuterJoin and t2 is RightOuterJoin:
        probe = p1.attributes() & middle_attrs
        if p1.is_strong(probe):
            return RotationClassification(
                True,
                "identity 12 (mirror)",
                "inner predicate is strong w.r.t. the middle subtree it references",
            )
        return RotationClassification(
            False,
            "identity 12 (mirror)",
            f"predicate {p1!r} is not strong w.r.t. {sorted(probe)}",
        )
    if t1 is LeftOuterJoin and t2 is Join:
        return RotationClassification(
            False, None, "forbidden pattern [X → Y − Z]: join on a null-supplied subtree"
        )
    if t1 is LeftOuterJoin and t2 is RightOuterJoin:
        return RotationClassification(
            False, None, "forbidden pattern [X → Y ← Z]: two arrows into the middle"
        )
    if t1 is Join and t2 is RightOuterJoin:
        return RotationClassification(
            False,
            None,
            "forbidden pattern [X → Y − Z] (mirror): the outerjoin would null-supply "
            "a join result",
        )
    return RotationClassification(False, None, f"unsupported operator pair ({t1.__name__}, {t2.__name__})")


def classify_transform(
    query: Expression, transform: BasicTransform, registry: SchemaRegistry
) -> RotationClassification:
    """Classify a BT instance located in a tree."""
    if transform.kind == "reversal":
        return RotationClassification(
            True, "reversal", "reversal BTs are always result preserving"
        )
    node = subtree_at(query, transform.path)
    if not isinstance(node, BinaryOp):
        raise NotApplicableError(f"no binary operator at path {transform.path}")
    if transform.kind == "rotate_right":
        inner = node.left
        if not isinstance(inner, BinaryOp):
            raise NotApplicableError("left child is not a binary operator")
        # If conjuncts migrate, both operators are joins (identity 1 applies).
        _stay, move = _split_predicate(node.predicate, inner.left.relations(), registry)
        if move:
            return RotationClassification(
                True, "identity 1", "conjunct migration between regular joins"
            )
        return classify_rotation(inner, node, inner.right, registry)
    if transform.kind == "rotate_left":
        inner = node.right
        if not isinstance(inner, BinaryOp):
            raise NotApplicableError("right child is not a binary operator")
        _stay, move = _split_predicate(node.predicate, inner.right.relations(), registry)
        if move:
            return RotationClassification(
                True, "identity 1", "conjunct migration between regular joins"
            )
        return classify_rotation(node, inner, inner.left, registry)
    raise NotApplicableError(f"unknown transform kind {transform.kind!r}")


def canonicalize(query: Expression) -> Expression:
    """Rebuild a tree with canonical conjunct ordering at every operator.

    Trees produced by :mod:`repro.core.enumeration` and by the transforms
    are already canonical; user-assembled trees should pass through here
    before set-based comparisons (e.g. Lemma-3 closure checks).
    """
    if isinstance(node := query, Rel):
        return node
    if isinstance(query, BinaryOp):
        return query.with_parts(
            canonicalize(query.left),
            canonicalize(query.right),
            conjunction([query.predicate]),
        )
    return query
