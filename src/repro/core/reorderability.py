"""Free reorderability: Theorem 1 and its brute-force validation.

Definition (Section 1.3).  A query ``Q`` and its ``graph(Q)`` are *freely
reorderable* if ``graph(Q)`` is defined and every ``Q'`` with
``graph(Q') = graph(Q)`` satisfies ``eval(Q') = eval(Q)``.

Theorem 1.  If ``graph(Q)`` is nice and the outerjoin predicates satisfy
the strongness condition, then ``Q`` is freely reorderable.

A note on the strongness condition.  The paper states it twice, in
slightly different words: Section 1.3 requires outerjoin predicates to
"return False when all attributes of the **preserved** relation are null",
while Lemma 2 / Theorem 1 in Section 3.2 say "strong with respect to the
**null-supplied** relation".  The two are not interchangeable: identity 12
(the only reassociation identity with a precondition) needs strongness
w.r.t. the *middle* relation of a chain ``X → Y → Z`` — that is, w.r.t.
the preserved-side relation ``Y`` that the inner outerjoin may have
null-padded.  The Section-1.3 phrasing is the operative one, and this
module implements it; the test suite exhibits a concrete nice graph whose
predicates are strong w.r.t. every null-supplied relation yet not freely
reorderable, confirming the Section-3.2 phrasing as an erratum.

Strongness is only ever *needed* on an outerjoin edge ``u → v`` when ``u``
itself can be null-padded, i.e. when ``u`` has an incoming outerjoin edge
(chained outerjoins).  :func:`strongness_requirements` reports the minimal
set; ``theorem1_applies`` checks the paper's blanket condition by default
and the minimal one with ``minimal=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, List, Optional, Tuple

from repro.algebra.comparison import bag_equal, explain_difference
from repro.algebra.relation import Database, Relation
from repro.algebra.schema import SchemaRegistry
from repro.core.enumeration import implementing_trees
from repro.core.expressions import Expression
from repro.core.graph import Arrow, QueryGraph, graph_of
from repro.core.niceness import is_nice, violations


@dataclass(frozen=True)
class StrongnessRequirement:
    """One outerjoin edge's strongness obligation."""

    edge: Arrow
    attributes: Tuple[str, ...]
    satisfied: bool
    needed_minimally: bool

    def __str__(self) -> str:
        u, v = self.edge
        status = "ok" if self.satisfied else "VIOLATED"
        scope = "required" if self.needed_minimally else "blanket"
        return f"{u}→{v}: strong w.r.t. {list(self.attributes)} [{scope}] {status}"


def strongness_requirements(
    graph: QueryGraph, registry: SchemaRegistry
) -> List[StrongnessRequirement]:
    """Evaluate the preserved-side strongness condition on every OJ edge.

    For edge ``u → v`` the probed attribute set is what the edge predicate
    references from ``u`` (the preserved endpoint).  ``needed_minimally``
    marks edges whose preserved endpoint can actually be null-padded
    (it has an incoming outerjoin edge), which is when identity 12's
    precondition really bites.
    """
    out: List[StrongnessRequirement] = []
    nodes_with_incoming = {v for (_u, v) in graph.oj_edges}
    for (u, v), predicate in sorted(graph.oj_edges.items()):
        preserved_attrs = predicate.attributes() & registry[u].attributes
        out.append(
            StrongnessRequirement(
                edge=(u, v),
                attributes=tuple(sorted(preserved_attrs)),
                satisfied=predicate.is_strong(preserved_attrs),
                needed_minimally=u in nodes_with_incoming,
            )
        )
    return out


@dataclass
class ReorderabilityVerdict:
    """Outcome of the Theorem-1 test, with explanations."""

    freely_reorderable: bool
    nice: bool
    niceness_violations: List[str] = field(default_factory=list)
    strongness: List[StrongnessRequirement] = field(default_factory=list)

    def __str__(self) -> str:
        head = "freely reorderable" if self.freely_reorderable else "NOT freely reorderable"
        lines = [head, f"  nice graph: {self.nice}"]
        lines.extend(f"  {v}" for v in self.niceness_violations)
        lines.extend(f"  {s}" for s in self.strongness)
        return "\n".join(lines)


def theorem1_applies(
    graph: QueryGraph, registry: SchemaRegistry, minimal: bool = False
) -> ReorderabilityVerdict:
    """Does Theorem 1 certify the graph as freely reorderable?

    ``minimal=False`` (default) checks the paper's blanket condition —
    every outerjoin predicate strong w.r.t. its preserved endpoint.
    ``minimal=True`` only requires it on chained edges, the exact set
    identity 12 needs; the brute-force checker confirms the weaker
    condition suffices.
    """
    problems = violations(graph)
    nice = not problems
    reqs = strongness_requirements(graph, registry)
    relevant = [r for r in reqs if r.needed_minimally] if minimal else reqs
    strong_ok = all(r.satisfied for r in relevant)
    return ReorderabilityVerdict(
        freely_reorderable=nice and strong_ok,
        nice=nice,
        niceness_violations=[str(p) for p in problems],
        strongness=reqs,
    )


def is_freely_reorderable(
    query: Expression, registry: SchemaRegistry, minimal: bool = False
) -> bool:
    """Theorem-1 test applied to a query expression."""
    graph = graph_of(query, registry)
    return theorem1_applies(graph, registry, minimal=minimal).freely_reorderable


# ---------------------------------------------------------------------------
# Brute force: the definition itself, decided by enumeration + evaluation
# ---------------------------------------------------------------------------


@dataclass
class BruteForceReport:
    """Result of exhaustively evaluating every IT on sample databases."""

    consistent: bool
    trees_checked: int
    databases_checked: int
    witness: Optional[Tuple[Expression, Expression, str]] = None

    def __str__(self) -> str:
        head = (
            "all implementing trees agree"
            if self.consistent
            else "implementing trees DISAGREE"
        )
        out = [f"{head} ({self.trees_checked} trees x {self.databases_checked} databases)"]
        if self.witness:
            q1, q2, diff = self.witness
            out.append(f"  {q1!r}")
            out.append(f"  vs {q2!r}")
            out.append(f"  {diff}")
        return "\n".join(out)


def brute_force_check(
    graph: QueryGraph,
    databases: Iterable[Database],
    max_trees: Optional[int] = None,
) -> BruteForceReport:
    """Evaluate every IT of the graph on every database; compare all results.

    This is the *definition* of free reorderability made executable; the
    benchmark suite runs it against Theorem 1's verdict on both nice and
    non-nice graphs.  ``max_trees`` bounds the enumeration for large
    graphs.
    """
    dbs = list(databases)
    trees = implementing_trees(graph)
    if max_trees is not None:
        trees = islice(trees, max_trees)

    reference: Optional[Expression] = None
    reference_results: List[Relation] = []
    count = 0
    for tree in trees:
        count += 1
        results = [tree.eval(db) for db in dbs]
        if reference is None:
            reference = tree
            reference_results = results
            continue
        for db_index, (expected, got) in enumerate(zip(reference_results, results)):
            if not bag_equal(expected, got):
                diff = explain_difference(expected, got)
                return BruteForceReport(
                    consistent=False,
                    trees_checked=count,
                    databases_checked=db_index + 1,
                    witness=(reference, tree, str(diff)),
                )
    return BruteForceReport(
        consistent=True, trees_checked=count, databases_checked=len(dbs)
    )


def quick_is_nice(query: Expression, registry: SchemaRegistry) -> bool:
    """Convenience: compute graph(Q) and apply the Lemma-1 check."""
    return is_nice(graph_of(query, registry))
