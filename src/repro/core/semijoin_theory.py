"""Section 6.3's closing conjecture: join/semijoin queries.

The paper: "We hope that similar free reorderability theorems can be
proved of other classes of expressions ... For example, for join/semijoin
queries, it appears that fewer basic transforms preserve the result, and
therefore a smaller set of graphs will be freely reorderable — semijoin
edges in series appear to be an additional forbidden subgraph."

This module builds the machinery to *study* that conjecture empirically:

* join/semijoin query graphs (undirected join edges plus directed
  semijoin edges pointing at the *discarded* relation);
* ``semijoin_graph_of`` for Join/Semijoin expression trees;
* an implementing-tree enumerator with the crucial twist that a semijoin
  *discards* its right operand's attributes, so a candidate operator is
  only well formed if its predicate's attributes are still **available**
  in both operand subtrees;
* a brute-force agreement checker over the valid trees.

Findings (machine-checked in the tests and the bench
``bench_section63_semijoin.py``):

* semijoin edges **in series** (``X ⋉ Y ⋉ Z`` with the second predicate
  on Y, Z) collapse the valid-tree set to the single right-deep order —
  the "forbidden subgraph" manifests as a total loss of reordering
  freedom, exactly the "fewer basic transforms" the paper predicts;
* semijoin edges in **parallel** (two semijoins filtering the same
  relation) and join/semijoin mixes keep multiple valid trees, and those
  trees agree on randomized databases (semijoins are filters on their
  preserved operand, and filters commute with joins whenever the
  availability rule lets them apply at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

from repro.algebra.comparison import bag_equal, explain_difference
from repro.algebra.predicates import Predicate, conjunction
from repro.algebra.relation import Database
from repro.algebra.schema import SchemaRegistry
from repro.core.expressions import Expression, Join, Rel, Semijoin
from repro.util.errors import GraphUndefinedError

Arrow = Tuple[str, str]


class JoinSemijoinGraph:
    """A query graph with join edges and directed semijoin edges.

    A semijoin edge ``(u, v)`` means "``u``'s side is filtered by a match
    in ``v``'s side, and ``v``'s side is discarded" — the arrow points at
    the discarded relation, by analogy with the outerjoin arrow pointing
    at the null-supplied one.
    """

    def __init__(
        self,
        nodes,
        join_edges: Mapping[FrozenSet[str], Predicate] | None = None,
        sj_edges: Mapping[Arrow, Predicate] | None = None,
    ):
        self.nodes = frozenset(nodes)
        self.join_edges: Dict[FrozenSet[str], Predicate] = dict(join_edges or {})
        self.sj_edges: Dict[Arrow, Predicate] = dict(sj_edges or {})

    @classmethod
    def from_edges(cls, join=(), sj=(), isolated=()) -> "JoinSemijoinGraph":
        nodes = set(isolated)
        join_edges: Dict[FrozenSet[str], List[Predicate]] = {}
        for u, v, p in join:
            nodes.update((u, v))
            join_edges.setdefault(frozenset({u, v}), []).append(p)
        sj_edges: Dict[Arrow, Predicate] = {}
        for u, v, p in sj:
            nodes.update((u, v))
            if (u, v) in sj_edges:
                raise GraphUndefinedError(f"duplicate semijoin edge {(u, v)}")
            sj_edges[(u, v)] = p
        return cls(nodes, {k: conjunction(v) for k, v in join_edges.items()}, sj_edges)

    def neighbors(self, node: str) -> FrozenSet[str]:
        out: set[str] = set()
        for pair in self.join_edges:
            if node in pair:
                out |= pair - {node}
        for (u, v) in self.sj_edges:
            if u == node:
                out.add(v)
            elif v == node:
                out.add(u)
        return frozenset(out)

    def is_connected(self, within: Optional[FrozenSet[str]] = None) -> bool:
        universe = self.nodes if within is None else frozenset(within)
        if not universe:
            return False
        start = next(iter(universe))
        seen, frontier = {start}, [start]
        while frontier:
            node = frontier.pop()
            for nb in self.neighbors(node):
                if nb in universe and nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        return seen == universe

    def cut(self, side_a: FrozenSet[str], side_b: FrozenSet[str]):
        joins = [
            (pair, p)
            for pair, p in self.join_edges.items()
            if len(pair & side_a) == 1 and len(pair & side_b) == 1
        ]
        sjs = [
            ((u, v), p)
            for (u, v), p in self.sj_edges.items()
            if (u in side_a and v in side_b) or (u in side_b and v in side_a)
        ]
        return joins, sjs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinSemijoinGraph):
            return NotImplemented
        return (
            self.nodes == other.nodes
            and self.join_edges == other.join_edges
            and self.sj_edges == other.sj_edges
        )

    def __hash__(self) -> int:
        return hash(
            (self.nodes, frozenset(self.join_edges.items()), frozenset(self.sj_edges.items()))
        )

    def describe(self) -> str:
        lines = [f"nodes: {', '.join(sorted(self.nodes))}"]
        for pair, p in sorted(self.join_edges.items(), key=lambda kv: sorted(kv[0])):
            u, v = sorted(pair)
            lines.append(f"  {u} - {v}   [{p!r}]")
        for (u, v), p in sorted(self.sj_edges.items()):
            lines.append(f"  {u} ⋉ {v}   [{p!r}]")
        return "\n".join(lines)


def semijoin_graph_of(query: Expression, registry: SchemaRegistry) -> JoinSemijoinGraph:
    """``graph(Q)`` for Join/Semijoin queries, mirroring Section 1.2."""
    join_lists: Dict[FrozenSet[str], List[Predicate]] = {}
    sj_edges: Dict[Arrow, Predicate] = {}

    def visit(node: Expression) -> None:
        if isinstance(node, Rel):
            return
        if isinstance(node, Join):
            for conjunct in node.predicate.conjuncts():
                owners = sorted(registry.owners(conjunct.attributes()))
                if len(owners) != 2:
                    raise GraphUndefinedError(
                        f"join conjunct {conjunct!r} must reference two ground relations"
                    )
                join_lists.setdefault(frozenset(owners), []).append(conjunct)
        elif isinstance(node, Semijoin):
            owners = sorted(registry.owners(node.predicate.attributes()))
            if len(owners) != 2:
                raise GraphUndefinedError(
                    f"semijoin predicate {node.predicate!r} must reference two ground relations"
                )
            a, b = owners
            preserved_rel = a if a in node.left.relations() else b
            discarded_rel = b if preserved_rel == a else a
            arrow = (preserved_rel, discarded_rel)
            if arrow in sj_edges:
                raise GraphUndefinedError(f"duplicate semijoin edge {arrow}")
            sj_edges[arrow] = node.predicate
        else:
            raise GraphUndefinedError(
                f"join/semijoin graphs cover Join and Semijoin nodes only; found "
                f"{type(node).__name__}"
            )
        for child in node.children():
            visit(child)

    visit(query)
    return JoinSemijoinGraph(
        query.relations(),
        {pair: conjunction(preds) for pair, preds in join_lists.items()},
        sj_edges,
    )


@dataclass(frozen=True)
class _TreeInfo:
    """A candidate tree plus the relations whose attributes it still carries."""

    expr: Expression
    available: FrozenSet[str]


def _ordered_partitions(graph: JoinSemijoinGraph, nodes: FrozenSet[str]):
    members = sorted(nodes)
    n = len(members)
    for mask in range(1, (1 << n) - 1):
        side_a = frozenset(members[i] for i in range(n) if mask & (1 << i))
        side_b = nodes - side_a
        if graph.is_connected(side_a) and graph.is_connected(side_b):
            yield side_a, side_b


def semijoin_implementing_trees(
    graph: JoinSemijoinGraph, registry: SchemaRegistry
) -> Iterator[Expression]:
    """All *well-formed* trees of a join/semijoin graph.

    Availability rule: a semijoin discards its right operand's scheme, so
    an operator is only emitted when every predicate attribute is still
    carried by the corresponding operand — this is where "semijoin edges
    in series" lose their reorderings.
    """
    if not graph.is_connected():
        raise GraphUndefinedError("disconnected graphs have no implementing trees")
    for info in _trees_for(graph, registry, graph.nodes, {}):
        yield info.expr


def _trees_for(
    graph: JoinSemijoinGraph,
    registry: SchemaRegistry,
    nodes: FrozenSet[str],
    cache: Dict[FrozenSet[str], List[_TreeInfo]],
) -> List[_TreeInfo]:
    if nodes in cache:
        return cache[nodes]
    if len(nodes) == 1:
        name = next(iter(nodes))
        result = [_TreeInfo(Rel(name), frozenset({name}))]
        cache[nodes] = result
        return result
    result: List[_TreeInfo] = []
    for side_a, side_b in _ordered_partitions(graph, nodes):
        join_cut, sj_cut = graph.cut(side_a, side_b)
        if join_cut and sj_cut:
            continue
        if len(sj_cut) > 1:
            continue
        for left in _trees_for(graph, registry, side_a, cache):
            for right in _trees_for(graph, registry, side_b, cache):
                if join_cut and not sj_cut:
                    predicate = conjunction([p for _pair, p in join_cut])
                    if _predicate_supported(predicate, left, right, registry):
                        result.append(
                            _TreeInfo(
                                Join(left.expr, right.expr, predicate),
                                left.available | right.available,
                            )
                        )
                elif sj_cut:
                    (arrow, predicate) = sj_cut[0]
                    preserved, _discarded = arrow
                    if preserved not in side_a:
                        continue  # semijoin keeps its left operand only
                    if _predicate_supported(predicate, left, right, registry):
                        result.append(
                            _TreeInfo(
                                Semijoin(left.expr, right.expr, predicate),
                                left.available,
                            )
                        )
    cache[nodes] = result
    return result


def _predicate_supported(
    predicate: Predicate, left: _TreeInfo, right: _TreeInfo, registry: SchemaRegistry
) -> bool:
    owners = registry.owners(predicate.attributes())
    for owner in owners:
        if owner in left.expr.relations():
            if owner not in left.available:
                return False
        elif owner not in right.available:
            return False
    return True


@dataclass
class SemijoinReport:
    """Outcome of the join/semijoin reorderability study for one graph."""

    tree_count: int
    consistent: bool
    witness: Optional[str] = None


def check_semijoin_graph(
    graph: JoinSemijoinGraph, registry: SchemaRegistry, databases: List[Database]
) -> SemijoinReport:
    """Enumerate the valid trees and compare their evaluations."""
    trees = list(semijoin_implementing_trees(graph, registry))
    if not trees:
        return SemijoinReport(tree_count=0, consistent=True)
    reference = trees[0]
    for db in databases:
        expected = reference.eval(db)
        for tree in trees[1:]:
            got = tree.eval(db)
            if not bag_equal(expected, got):
                diff = explain_difference(expected, got)
                return SemijoinReport(
                    tree_count=len(trees),
                    consistent=False,
                    witness=f"{reference!r} vs {tree!r}: {diff}",
                )
    return SemijoinReport(tree_count=len(trees), consistent=True)
