"""The "nice" query-graph class (Section 3.1) and Lemma 1.

Definition (Section 3.1).  A query graph ``G`` is *nice* if

* ``G = G1 ∪ G2`` where ``G1`` is connected and has only join edges, and
  ``G2`` is a forest of outerjoin edges; and
* the intersection of ``G1`` and ``G2`` is exactly the set of roots of the
  forest ``G2``.

Lemma 1 gives the forbidden-pattern characterization: ``G`` is nice iff

1. there are no cycles composed of outerjoin edges,
2. there is no path of the form ``X → Y − Z`` (a node with an incoming
   outerjoin edge and an incident join edge), and
3. there is no path of the form ``X → Y ← Z`` (a node with two incoming
   outerjoin edges).

This module implements **both** definitions independently —
:func:`nice_decomposition` constructs the (G1, G2) split, and
:func:`violations` hunts for the Lemma-1 patterns — and the test suite
verifies their equivalence on exhaustive small graphs and random large
ones, which is this repository's machine check of Lemma 1.

Niceness is stated for connected graphs (queries whose implementing trees
exist are connected, since Cartesian products are excluded); both checkers
report a disconnected graph as not nice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core.graph import Arrow, QueryGraph


@dataclass(frozen=True)
class NicenessViolation:
    """One forbidden pattern found in a graph."""

    kind: str  # "disconnected" | "oj-cycle" | "oj-into-join" | "two-incoming-oj"
    nodes: Tuple[str, ...]
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} at {', '.join(self.nodes)}: {self.detail}"


def violations(graph: QueryGraph) -> List[NicenessViolation]:
    """All Lemma-1 violations in the graph (empty list == nice)."""
    found: List[NicenessViolation] = []
    if not graph.is_connected():
        found.append(
            NicenessViolation(
                kind="disconnected",
                nodes=tuple(sorted(graph.nodes)),
                detail="a query graph without Cartesian products is connected",
            )
        )

    # Condition 3: no X → Y ← Z.
    for node in sorted(graph.nodes):
        incoming = graph.oj_in_edges(node)
        if len(incoming) >= 2:
            sources = tuple(sorted(u for (u, _v) in incoming))
            found.append(
                NicenessViolation(
                    kind="two-incoming-oj",
                    nodes=(node,),
                    detail=f"outerjoin edges from {sources} both point into {node!r} "
                    f"(path X → Y ← Z)",
                )
            )
        # Condition 2: no X → Y − Z.
        if incoming:
            join_nbs = graph.join_neighbors(node)
            if join_nbs:
                found.append(
                    NicenessViolation(
                        kind="oj-into-join",
                        nodes=(node,),
                        detail=f"{node!r} is null-supplied by {incoming[0][0]!r} but also "
                        f"joins with {sorted(join_nbs)} (path X → Y − Z)",
                    )
                )

    # Condition 1: no cycles composed of outerjoin edges (undirected sense).
    cycle = _oj_cycle(graph)
    if cycle is not None:
        found.append(
            NicenessViolation(
                kind="oj-cycle",
                nodes=tuple(cycle),
                detail="outerjoin edges form a cycle; G2 must be a forest",
            )
        )
    return found


def is_nice(graph: QueryGraph) -> bool:
    """Lemma-1 characterization: nice iff no forbidden pattern occurs."""
    return not violations(graph)


def _oj_cycle(graph: QueryGraph) -> Optional[List[str]]:
    """Find a cycle among outerjoin edges viewed as undirected, if any."""
    adjacency: dict[str, list[str]] = {}
    for (u, v) in graph.oj_edges:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    seen: set[str] = set()
    for start in sorted(adjacency):
        if start in seen:
            continue
        # DFS with parent tracking; a visited non-parent neighbor closes a cycle.
        stack: list[tuple[str, Optional[str]]] = [(start, None)]
        parents: dict[str, Optional[str]] = {start: None}
        while stack:
            node, parent = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for nb in adjacency.get(node, ()):
                if nb == parent:
                    # A multigraph of two opposite arrows between the same pair
                    # is rejected at construction time, so skipping one parent
                    # edge is safe.
                    continue
                if nb in seen:
                    return _reconstruct_cycle(parents, node, nb)
                if nb not in parents:
                    parents[nb] = node
                stack.append((nb, node))
    return None


def _reconstruct_cycle(parents, node: str, other: str) -> List[str]:
    path = [node]
    cur = node
    while parents.get(cur) is not None:
        cur = parents[cur]  # type: ignore[assignment]
        path.append(cur)
    return [other] + path


@dataclass(frozen=True)
class NiceDecomposition:
    """The constructive witness of niceness: G = G1 ∪ G2.

    ``g1_nodes`` spans the connected join-edge core; ``forest_roots`` is
    the intersection of G1 and G2 (roots of the outerjoin forest);
    ``forest_edges`` are the outerjoin edges, each directed away from its
    root.
    """

    g1_nodes: FrozenSet[str]
    forest_roots: FrozenSet[str]
    forest_edges: Tuple[Arrow, ...]


def nice_decomposition(graph: QueryGraph) -> Optional[NiceDecomposition]:
    """Construct the Section-3.1 decomposition, or return None.

    Independent of :func:`violations`; the two are cross-validated in the
    test suite as the machine check of Lemma 1.
    """
    if not graph.is_connected():
        return None

    # G2 candidate: all outerjoin edges.  Check forest, in-degree <= 1.
    indegree: dict[str, int] = {}
    for (u, v) in graph.oj_edges:
        indegree[v] = indegree.get(v, 0) + 1
    if any(d > 1 for d in indegree.values()):
        return None
    if _oj_cycle(graph) is not None:
        return None

    # Nodes internal to outerjoin trees (non-roots) must not be in G1.
    non_roots = {v for (_u, v) in graph.oj_edges}
    g1_nodes = graph.nodes - frozenset(non_roots)

    # All join edges must connect G1 nodes only.
    for pair in graph.join_edges:
        if not pair <= g1_nodes:
            return None

    # G1 must be connected using join edges alone.
    if not _join_connected(graph, g1_nodes):
        return None

    # Roots of the forest: G2 nodes that are in G1.
    g2_nodes = {u for (u, _v) in graph.oj_edges} | non_roots
    roots = frozenset(g2_nodes & g1_nodes)

    # Every outerjoin tree must be rooted in G1: walking arrows backward
    # from any G2 node must end at a root (in-degree 0 node inside G1).
    parent = {v: u for (u, v) in graph.oj_edges}
    for node in g2_nodes:
        cur = node
        hops = 0
        while cur in parent:
            cur = parent[cur]
            hops += 1
            if hops > len(graph.nodes):
                return None  # defensive; cycles were excluded above
        if cur not in g1_nodes:
            return None

    return NiceDecomposition(
        g1_nodes=frozenset(g1_nodes),
        forest_roots=roots,
        forest_edges=tuple(sorted(graph.oj_edges)),
    )


def _join_connected(graph: QueryGraph, nodes: FrozenSet[str]) -> bool:
    """Are ``nodes`` connected using join edges only?"""
    if not nodes:
        return False
    if len(nodes) == 1:
        return True
    start = next(iter(nodes))
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for nb in graph.join_neighbors(node):
            if nb in nodes and nb not in seen:
                seen.add(nb)
                frontier.append(nb)
    return seen == nodes


def is_nice_by_decomposition(graph: QueryGraph) -> bool:
    """Definition-based niceness check (the left side of Lemma 1)."""
    return nice_decomposition(graph) is not None
