"""Section 4: strong restrictions simplify outerjoins to joins.

The paper's simplification rule:

    Suppose the query includes a predicate (restriction or regular join)
    that is strong in some attributes of relation R.  Consider the path in
    the implementing tree going from that predicate to R.  If an outerjoin
    is in that path and R is in its null-supplied subtree, then replace
    the operator by regular join.

Rationale: a strong predicate discards every tuple in which R's attributes
were null-padded, so there was no point padding them — "regular join would
suffice".  The simplification is carried out *before* creation of the
query graph.

The module also packages the cautionary tale at the end of Section 4: a
referential-integrity constraint may justify replacing an outerjoin edge
by a join edge, but the revised graph "may not be freely reorderable" —
:func:`apply_referential_integrity` performs the replacement so tests and
benchmarks can watch niceness break (``R1 → R2 → R3`` turning into
``R1 → (R2 − R3)``, Example 2's shape).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro.algebra.predicates import Predicate
from repro.algebra.schema import SchemaRegistry
from repro.core.expressions import (
    BinaryOp,
    Expression,
    FullOuterJoin,
    Join,
    LeftOuterJoin,
    Project,
    Rel,
    Restrict,
    RightOuterJoin,
)
from repro.core.graph import QueryGraph
from repro.util.errors import NotApplicableError


@dataclass
class SimplificationReport:
    """What the Section-4 rewrite did to a tree."""

    query: Expression
    conversions: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.conversions)


def _strong_relations(
    predicate: Predicate, registry: SchemaRegistry, candidates: FrozenSet[str]
) -> FrozenSet[str]:
    """Relations among ``candidates`` on whose referenced attributes the
    predicate is strong."""
    out: set[str] = set()
    for rel_name in candidates:
        probe = predicate.attributes() & registry[rel_name].attributes
        if probe and predicate.is_strong(probe):
            out.add(rel_name)
    return frozenset(out)


def simplify_outerjoins(
    query: Expression, registry: SchemaRegistry
) -> SimplificationReport:
    """Apply the Section-4 rule everywhere in the tree.

    The traversal carries downward the set of relations protected by a
    strong predicate applied *above*; whenever an outerjoin's null-supplied
    subtree contains such a relation, the outerjoin becomes a regular join
    (whose predicate then also contributes strength further down, since
    regular-join predicates count as "restriction or regular join").
    """
    report = SimplificationReport(query=query)

    def walk(node: Expression, strong_rels: FrozenSet[str]) -> Expression:
        if isinstance(node, Rel):
            return node
        if isinstance(node, Restrict):
            gained = _strong_relations(node.predicate, registry, node.relations())
            child = walk(node.child, strong_rels | gained)
            return Restrict(child, node.predicate)
        if isinstance(node, Project):
            return Project(walk(node.child, strong_rels), node.attributes, node.dedup)
        if isinstance(node, Join):
            gained = _strong_relations(node.predicate, registry, node.relations())
            passed = strong_rels | gained
            return Join(
                walk(node.left, passed), walk(node.right, passed), node.predicate
            )
        if isinstance(node, FullOuterJoin):
            # Section 4's closing remark: "A similar argument can be used
            # to convert 2-sided outerjoin to one-sided outerjoin."  A
            # strong predicate over a left-subtree relation kills the rows
            # that pad the left side (those produced for unmatched right
            # tuples), leaving a left outerjoin; symmetrically for the
            # right; both sides strong leaves a regular join.
            left_hit = bool(node.left.relations() & strong_rels)
            right_hit = bool(node.right.relations() & strong_rels)
            if left_hit or right_hit:
                if left_hit and right_hit:
                    converted: Expression = Join(node.left, node.right, node.predicate)
                    target = "join"
                elif left_hit:
                    converted = LeftOuterJoin(node.left, node.right, node.predicate)
                    target = "left outerjoin"
                else:
                    converted = RightOuterJoin(node.left, node.right, node.predicate)
                    target = "right outerjoin"
                report.conversions.append(
                    f"{node.to_infix()}: strong predicate above protects "
                    f"{'both sides' if left_hit and right_hit else ('left' if left_hit else 'right') + ' side'}"
                    f" — full outerjoin ⇒ {target}"
                )
                return walk(converted, strong_rels)
            return node.with_parts(
                walk(node.left, strong_rels), walk(node.right, strong_rels)
            )
        if isinstance(node, (LeftOuterJoin, RightOuterJoin)):
            null_side = node.null_supplied()
            if null_side.relations() & strong_rels:
                victims = sorted(null_side.relations() & strong_rels)
                report.conversions.append(
                    f"{node.to_infix()}: null-supplied side contains {victims}, "
                    "protected by a strong predicate above — outerjoin ⇒ join"
                )
                converted = Join(node.left, node.right, node.predicate)
                return walk(converted, strong_rels)
            # The outerjoin survives; its own predicate is NOT strength-
            # contributing (it pads rather than discards non-matches), so
            # only the inherited set flows down.
            return node.with_parts(
                walk(node.left, strong_rels), walk(node.right, strong_rels)
            )
        # Other operators: recurse without gaining strength.
        kids = node.children()
        if isinstance(node, BinaryOp) and len(kids) == 2:
            return node.with_parts(walk(kids[0], strong_rels), walk(kids[1], strong_rels))
        return node

    report.query = walk(query, frozenset())
    return report


def apply_referential_integrity(
    graph: QueryGraph, edge: Tuple[str, str]
) -> QueryGraph:
    """Replace the outerjoin edge ``(preserved, null_supplied)`` by a join edge.

    Models Section 4's referential-integrity rewrite: when a constraint
    guarantees that no tuple would be null-padded, the outerjoin result
    equals the join result, so the edge *may* be converted — but the
    resulting graph can fall outside the freely-reorderable class, which
    is exactly what the caller should go on to check.
    """
    if edge not in graph.oj_edges:
        raise NotApplicableError(f"no outerjoin edge {edge} in graph")
    predicate = graph.oj_edges[edge]
    oj_edges = {arrow: p for arrow, p in graph.oj_edges.items() if arrow != edge}
    join_edges = dict(graph.join_edges)
    join_edges[frozenset(edge)] = predicate
    return QueryGraph(graph.nodes, join_edges, oj_edges)
