"""Generalized-outerjoin reassociation — Section 6.2, identities 15 and 16.

The result-preserving basic transforms cannot reassociate Example 2's
``X → (Y − Z)``; the paper's escape hatch is the generalized outerjoin
(equation 14, :func:`repro.algebra.goj.generalized_outerjoin`).  Under the
assumptions the paper states — duplicate-free relations, strong predicates
of the forms ``P_xy`` and ``P_yz`` — the following identities hold:

* identity 15:  ``X OJ (Y JN Z)  =  (X OJ Y) GOJ[sch(X)] Z``
* identity 16:  ``X JN (Y GOJ[S] Z)  =  (X JN Y) GOJ[S ∪ sch(X)] Z``,
  provided ``S ⊆ sch(Y)`` and ``S`` contains all the X–Y join attributes.

Identity 15 read right-to-left is the reassociation Example 2 lacked: the
non-nice query ``X → (Y − Z)`` can be evaluated left-deep by paying for a
GOJ instead of a plain outerjoin.  :func:`reassociate_outerjoin_of_join`
packages that rewrite for optimizer use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.algebra.comparison import RelationDiff, explain_difference
from repro.algebra.goj import generalized_outerjoin
from repro.algebra.operators import join, outerjoin
from repro.algebra.predicates import Predicate
from repro.algebra.relation import Database, Relation
from repro.core.expressions import (
    Expression,
    GeneralizedOuterJoin,
    Join,
    LeftOuterJoin,
)
from repro.util.errors import NotApplicableError, PredicateError


@dataclass
class GojSetting:
    """Inputs for the GOJ identities: X, Y, Z plus linking predicates."""

    x: Relation
    y: Relation
    z: Relation
    pxy: Predicate
    pyz: Predicate

    def validate(self) -> None:
        """Enforce the paper's stated preconditions."""
        for name, rel in (("X", self.x), ("Y", self.y), ("Z", self.z)):
            if not rel.is_duplicate_free():
                raise PredicateError(f"GOJ identities assume duplicate-free relations; {name} is not")
        if not self.pxy.is_strong(self.pxy.attributes()):
            raise PredicateError("P_xy must be strong")
        if not self.pyz.is_strong(self.pyz.attributes()):
            raise PredicateError("P_yz must be strong")


def identity15_sides(s: GojSetting) -> Tuple[Relation, Relation]:
    """LHS and RHS of identity 15."""
    lhs = outerjoin(s.x, join(s.y, s.z, s.pyz), s.pxy)
    rhs = generalized_outerjoin(
        outerjoin(s.x, s.y, s.pxy), s.z, s.pyz, sorted(s.x.scheme)
    )
    return lhs, rhs


def check_identity15(s: GojSetting) -> Tuple[bool, RelationDiff]:
    s.validate()
    lhs, rhs = identity15_sides(s)
    diff = explain_difference(lhs, rhs)
    return diff.equal, diff


def identity16_sides(s: GojSetting, projection: List[str]) -> Tuple[Relation, Relation]:
    """LHS and RHS of identity 16 for a projection set ``S ⊆ sch(Y)``."""
    s_set = frozenset(projection)
    if not s_set <= s.y.scheme:
        raise PredicateError("identity 16 requires S ⊆ sch(Y)")
    xy_join_attrs = s.pxy.attributes() & s.y.scheme
    if not xy_join_attrs <= s_set:
        raise PredicateError("identity 16 requires S to contain all X-Y join attributes")
    lhs = join(s.x, generalized_outerjoin(s.y, s.z, s.pyz, sorted(s_set)), s.pxy)
    rhs = generalized_outerjoin(
        join(s.x, s.y, s.pxy), s.z, s.pyz, sorted(s_set | s.x.scheme)
    )
    return lhs, rhs


def check_identity16(s: GojSetting, projection: List[str]) -> Tuple[bool, RelationDiff]:
    s.validate()
    lhs, rhs = identity16_sides(s, projection)
    diff = explain_difference(lhs, rhs)
    return diff.equal, diff


# ---------------------------------------------------------------------------
# The rewrite that rescues Example 2
# ---------------------------------------------------------------------------


def reassociate_outerjoin_of_join(query: Expression) -> Expression:
    """Rewrite ``X → (Y − Z)`` into ``(X → Y) GOJ[sch-of-X] Z``.

    This is identity 15 right-to-left, applied at the root of an
    expression tree.  The resulting tree is left-deep — exactly the shape
    a pipelined executor wants — at the cost of one generalized outerjoin.
    The caller must guarantee the identity's preconditions (duplicate-free
    inputs, strong predicates); the GOJ projection set is the scheme of X,
    recorded symbolically as X's relation names' attributes at eval time.
    """
    if not isinstance(query, LeftOuterJoin):
        raise NotApplicableError("rewrite expects an outerjoin at the root")
    inner = query.right
    if not isinstance(inner, Join):
        raise NotApplicableError("rewrite expects a join as the null-supplied operand")
    x, y, z = query.left, inner.left, inner.right
    pxy, pyz = query.predicate, inner.predicate
    # The predicate of X → (Y−Z) must reference Y (not Z) for the rewrite
    # to leave a well-formed X → Y behind.
    return _DeferredGoj(LeftOuterJoin(x, y, pxy), z, pyz, x)


class _DeferredGoj(GeneralizedOuterJoin):
    """A GOJ node whose projection set is X's scheme, resolved at eval time.

    ``GeneralizedOuterJoin`` stores an attribute set; the rewrite knows
    only the *expression* X, whose scheme depends on the database.  This
    subclass defers the resolution.
    """

    __slots__ = ("projection_source",)

    def __init__(self, left, right, predicate, projection_source: Expression):
        super().__init__(left, right, predicate, frozenset())
        self.projection_source = projection_source

    def eval(self, db: Database) -> Relation:
        attrs: set[str] = set()
        for name in self.projection_source.relations():
            attrs |= set(db[name].scheme)
        return generalized_outerjoin(
            self.left.eval(db), self.right.eval(db), self.predicate, sorted(attrs)
        )

    def to_infix(self, show_predicates: bool = False) -> str:
        return (
            f"({self.left.to_infix(show_predicates)} "
            f"GOJ[sch({self.projection_source.to_infix()})] "
            f"{self.right.to_infix(show_predicates)})"
        )
