"""Pluggable execution backends (ROADMAP item 4, PostBOUND-style).

The conformance layer proved that transpiled SQL on a real engine agrees
with the local evaluator; this package promotes that machinery from test
harness to *execution backend*.  A backend is anything that can hold a
copy of the data and answer expression trees: the local engine itself
(:class:`~repro.backends.local.LocalBackend`), the stdlib SQLite engine
(:class:`~repro.backends.sqlite_backend.SQLiteBackend`), or DuckDB when
the wheel is importable
(:class:`~repro.backends.duckdb_backend.DuckDBBackend`).

Two properties make the package an optimizer laboratory rather than a
mere federation shim:

* **generation-keyed sync** — :meth:`ExecutionBackend.sync` pushes
  storage data only when the storage :attr:`generation
  <repro.engine.storage.Storage.generation>` changed, so repeated
  queries over unchanged data pay zero transfer cost;
* **join-order hinting** — :func:`repro.backends.hints.hinted_sql`
  renders a physical tree as explicitly nested/parenthesized JOIN SQL
  that the backend's own optimizer must respect, so our DP/Yannakakis
  dispatch decisions can be A/B-measured against the backend's native
  planner on identical data.
"""

from repro.backends.base import (
    BACKEND_ENV,
    BackendCapabilities,
    BackendUnavailableError,
    ExecutionBackend,
    available_backends,
    create_backend,
    default_backend_name,
    register_backend,
    registered_backends,
)
from repro.backends.hints import HintError, hinted_sql, join_shape, parse_join_shape

__all__ = [
    "BACKEND_ENV",
    "BackendCapabilities",
    "BackendUnavailableError",
    "ExecutionBackend",
    "HintError",
    "available_backends",
    "create_backend",
    "default_backend_name",
    "hinted_sql",
    "join_shape",
    "parse_join_shape",
    "register_backend",
    "registered_backends",
]
