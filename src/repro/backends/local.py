"""The local engine behind the backend interface.

``LocalBackend`` is the identity element of the backend family: ``sync``
just adopts the storage reference (no copy — the engine already owns the
data), a *hinted* execution runs the given physical tree verbatim through
the planner/executor, and a *native* execution runs the full optimizer
pipeline.  It exists so routers can treat every destination uniformly;
the service's default ``local`` route intentionally bypasses this class
entirely and calls the pipeline directly, keeping the pre-backend code
path byte-identical (proven by a subprocess test).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.algebra.relation import Relation
from repro.backends.base import BackendCapabilities, ExecutionBackend, register_backend
from repro.core.expressions import Expression
from repro.engine.storage import Storage
from repro.util.errors import EvaluationError

_CAPS = BackendCapabilities(
    name="local",
    dialect="none",
    supports_hints=True,
    native_optimizer=False,
    persistent=True,
)


class LocalBackend(ExecutionBackend):
    """Run queries on the in-process engine through the backend interface."""

    def __init__(self) -> None:
        self._storage: Optional[Storage] = None
        self._generation: Optional[tuple] = None
        self.counters: Dict[str, int] = {
            "syncs": 0,
            "sync_hits": 0,
            "queries": 0,
            "hinted_queries": 0,
        }

    @property
    def capabilities(self) -> BackendCapabilities:
        return _CAPS

    def sync(self, storage: Storage) -> bool:
        self.counters["syncs"] += 1
        generation = storage.generation
        if storage is self._storage and generation == self._generation:
            self.counters["sync_hits"] += 1
            return False
        self._storage = storage
        self._generation = generation
        return True

    def execute(
        self,
        expr: Expression,
        hint: Optional[Expression] = None,
        fingerprint: Optional[str] = None,
    ) -> Relation:
        if self._storage is None:
            raise EvaluationError("local backend has no data; call sync() first")
        self.counters["queries"] += 1
        if hint is not None:
            from repro.engine.executor import execute

            self.counters["hinted_queries"] += 1
            return execute(hint, self._storage).relation
        from repro.optimizer.pipeline import optimize_and_run

        _plan, execution = optimize_and_run(expr, self._storage)
        return execution.relation

    def close(self) -> None:
        self._storage = None

    def snapshot(self) -> Dict[str, object]:
        return {"backend": "local", **self.counters}


register_backend("local", LocalBackend)
