"""SQLite as a first-class execution backend (promoted from the oracle).

The conformance oracle opened a fresh ``:memory:`` connection per use and
re-shipped every relation; this backend keeps one **persistent
connection**, syncs data only when the storage *generation* changes,
wraps loads in a single transaction with ``executemany`` **batched
inserts**, builds **indexes on join keys** extracted from equi-join
conjuncts, and caches transpiled SQL keyed by the plan fingerprint so
sqlite3's internal statement cache can reuse the **prepared statement**
across calls.

Two execution modes share the connection:

* **native** — the expression transpiles through the conformance
  :class:`~repro.conformance.sqlite_oracle.SQLTranspiler` (nested
  subqueries), and SQLite's own planner picks the join order;
* **hinted** — a physical tree renders through
  :func:`repro.backends.hints.hinted_sql` into nested
  ``CROSS JOIN ... ON`` sources, which SQLite documents it will never
  reorder — so the order our optimizer chose is the order SQLite runs.

A small module-level pool (:func:`acquire_pooled`, :func:`release_pooled`)
lets the oracle reuse warm connections across many per-case databases.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.algebra.nulls import NULL, is_null
from repro.algebra.predicates import AttrRef, Comparison
from repro.algebra.relation import Database, Relation
from repro.algebra.schema import SchemaRegistry
from repro.algebra.sqlrender import sql_identifier
from repro.algebra.tuples import Row
from repro.backends.base import BackendCapabilities, ExecutionBackend, register_backend
from repro.backends.hints import hinted_sql
from repro.core.expressions import BinaryOp, Expression, Restrict
from repro.engine.storage import Storage
from repro.tools import instrumentation
from repro.util.errors import EvaluationError, SchemaError

#: Rows per INSERT batch.  executemany already loops in C; the batch
#: bound just keeps peak argument-buffer memory flat on wide loads.
INSERT_BATCH = 4096

_CAPS = BackendCapabilities(
    name="sqlite",
    dialect="sqlite",
    supports_hints=True,
    native_optimizer=True,
    persistent=True,
)


def _index_targets(expr: Expression, registry: SchemaRegistry) -> List[Tuple[str, str]]:
    """(table, attribute) pairs worth indexing: attr-to-attr equi-join keys."""
    out: List[Tuple[str, str]] = []
    seen = set()
    for _path, node in expr.nodes():
        predicate = getattr(node, "predicate", None)
        if predicate is None or not isinstance(node, (BinaryOp, Restrict)):
            continue
        for conjunct in predicate.conjuncts():
            if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                continue
            if not (
                isinstance(conjunct.left, AttrRef) and isinstance(conjunct.right, AttrRef)
            ):
                continue
            for term in (conjunct.left, conjunct.right):
                if term.name in seen:
                    continue
                try:
                    owner = registry.owner(term.name)
                except SchemaError:
                    continue
                seen.add(term.name)
                out.append((owner, term.name))
    return out


class SQLiteBackend(ExecutionBackend):
    """Persistent in-memory SQLite engine behind the backend interface."""

    def __init__(self) -> None:
        # check_same_thread=False + our lock: the service worker pool may
        # route queries from several threads through one backend; all
        # connection use is serialized below.
        self._conn = sqlite3.connect(":memory:", check_same_thread=False)
        self._lock = threading.RLock()
        self._registry: Optional[SchemaRegistry] = None
        self._generation: Optional[tuple] = None
        self._tables: Tuple[str, ...] = ()
        self._sql_cache: Dict[object, Tuple[str, bool]] = {}
        self._indexed: set = set()
        self._closed = False
        self.counters: Dict[str, int] = {
            "syncs": 0,
            "sync_hits": 0,
            "loads": 0,
            "rows_loaded": 0,
            "queries": 0,
            "hinted_queries": 0,
            "statement_hits": 0,
            "statement_misses": 0,
            "indexes_built": 0,
        }

    @property
    def capabilities(self) -> BackendCapabilities:
        return _CAPS

    @property
    def registry(self) -> SchemaRegistry:
        if self._registry is None:
            raise EvaluationError("sqlite backend has no data; call sync() first")
        return self._registry

    # -- data ----------------------------------------------------------------

    def sync(self, storage: Storage) -> bool:
        """Mirror the storage unless its generation already matches."""
        with self._lock:
            self.counters["syncs"] += 1
            generation = storage.generation
            if generation == self._generation:
                self.counters["sync_hits"] += 1
                return False
            db = storage.to_database()
            self._load(db.registry, ((name, db[name]) for name in db))
            self._generation = generation
            return True

    def load_database(self, db: Database) -> None:
        """Load an algebra-level database directly (the oracle path).

        Unkeyed: an algebra ``Database`` carries no generation, so every
        load replaces the data.  Amortization across *expressions* over
        one database still holds — that is the oracle's access pattern.
        """
        with self._lock:
            self._load(db.registry, ((name, db[name]) for name in db))
            self._generation = None

    def _load(self, registry: SchemaRegistry, relations: Iterable[Tuple[str, Relation]]) -> None:
        self.counters["loads"] += 1
        self._sql_cache.clear()
        self._indexed.clear()
        cur = self._conn
        for name in self._tables:
            cur.execute(f"DROP TABLE IF EXISTS {sql_identifier(name)}")
        loaded: List[str] = []
        cur.execute("BEGIN")
        try:
            for name, relation in relations:
                cols = sorted(relation.schema.attributes)
                ddl = ", ".join(sql_identifier(c) for c in cols)
                cur.execute(f"CREATE TABLE {sql_identifier(name)} ({ddl})")
                placeholders = ", ".join("?" for _ in cols)
                insert = f"INSERT INTO {sql_identifier(name)} VALUES ({placeholders})"
                rows = iter(relation)
                while True:
                    batch = [
                        tuple(None if is_null(row[c]) else row[c] for c in cols)
                        for row in itertools.islice(rows, INSERT_BATCH)
                    ]
                    if not batch:
                        break
                    cur.executemany(insert, batch)
                    self.counters["rows_loaded"] += len(batch)
                loaded.append(name)
            cur.execute("COMMIT")
        except BaseException:
            cur.execute("ROLLBACK")
            raise
        self._tables = tuple(loaded)
        self._registry = registry

    def ensure_join_indexes(self, expr: Expression) -> int:
        """CREATE INDEX on every attr-to-attr equi-join key of ``expr``.

        Idempotent per load: built keys are remembered until the next
        data load invalidates them with the tables.
        """
        with self._lock:
            built = 0
            for table, attr in _index_targets(expr, self.registry):
                if (table, attr) in self._indexed:
                    continue
                ix = f"ix_{table}_{attr}".replace(".", "_").replace(" ", "_")
                self._conn.execute(
                    f"CREATE INDEX IF NOT EXISTS {sql_identifier(ix)} "
                    f"ON {sql_identifier(table)} ({sql_identifier(attr)})"
                )
                self._indexed.add((table, attr))
                built += 1
            self.counters["indexes_built"] += built
            return built

    # -- execution -----------------------------------------------------------

    def _statement(
        self,
        expr: Expression,
        hint: Optional[Expression],
        fingerprint: Optional[str],
    ) -> str:
        """Transpile (or replay) the SQL for one execution.

        The cache key is the plan fingerprint when the caller has one —
        stable across structurally-equal queries — or the expression
        itself (trees are hashable) otherwise.  Identical SQL text then
        hits sqlite3's internal compiled-statement cache, giving
        prepared-statement reuse without an explicit prepare API.
        """
        mode = "hinted" if hint is not None else "native"
        key: object = (mode, fingerprint) if fingerprint else (mode, hint or expr)
        hit = self._sql_cache.get(key)
        if hit is not None:
            self.counters["statement_hits"] += 1
            return hit[0]
        self.counters["statement_misses"] += 1
        if hint is not None:
            sql, _cols = hinted_sql(hint, self.registry, dialect="sqlite")
        else:
            from repro.conformance.sqlite_oracle import to_sqlite_sql

            sql = to_sqlite_sql(expr, self.registry)
        self._sql_cache[key] = (sql, hint is not None)
        return sql

    def execute(
        self,
        expr: Expression,
        hint: Optional[Expression] = None,
        fingerprint: Optional[str] = None,
    ) -> Relation:
        with self._lock:
            self.counters["queries"] += 1
            if hint is not None:
                self.counters["hinted_queries"] += 1
                self.ensure_join_indexes(hint)
            sql = self._statement(expr, hint, fingerprint)
            instrumentation.bump("backend_sqlite_queries")
            cursor = self._conn.execute(sql)
            names = [d[0] for d in cursor.description]
            rows = [
                Row({n: (NULL if v is None else v) for n, v in zip(names, row)})
                for row in cursor.fetchall()
            ]
            return Relation(names, rows)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "backend": "sqlite",
                "tables": len(self._tables),
                "indexes": len(self._indexed),
                **self.counters,
            }


# ---------------------------------------------------------------------------
# Connection pool (the oracle's path)
# ---------------------------------------------------------------------------

_POOL: List[SQLiteBackend] = []
_POOL_LOCK = threading.Lock()
_POOL_MAX = 4


def acquire_pooled() -> SQLiteBackend:
    """Take a warm backend from the pool (or make one)."""
    with _POOL_LOCK:
        while _POOL:
            backend = _POOL.pop()
            if not backend.closed:
                instrumentation.bump("backend_sqlite_pool_hits")
                return backend
    instrumentation.bump("backend_sqlite_pool_misses")
    return SQLiteBackend()


def release_pooled(backend: SQLiteBackend) -> None:
    """Return a backend to the pool; closes it when the pool is full."""
    if backend.closed:
        return
    with _POOL_LOCK:
        if len(_POOL) < _POOL_MAX:
            _POOL.append(backend)
            return
    backend.close()


register_backend("sqlite", SQLiteBackend)
