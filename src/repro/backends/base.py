"""The :class:`ExecutionBackend` interface, capabilities, and registry.

A backend owns a *copy* of the data (pushed by :meth:`ExecutionBackend.sync`,
keyed on the storage generation so unchanged data is never re-shipped) and
evaluates expression trees against it.  ``execute`` takes an optional
*hint*: a physical tree whose join order the backend must reproduce
exactly — rendered by :mod:`repro.backends.hints` as explicitly nested
JOIN SQL for the SQL backends, or executed verbatim by the local engine.

Backends are constructed through a name registry so that the service,
the conformance tiers, and the benchmark harness all route through one
factory — and so optional backends (DuckDB) can *register* even when
their wheel is absent, failing at construction time with
:class:`BackendUnavailableError`, which the conformance cross-checker
records as a skip rather than a failure.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.algebra.relation import Relation
from repro.core.expressions import Expression
from repro.engine.storage import Storage
from repro.util.errors import PlanningError

#: Environment variable selecting the service's default backend route.
BACKEND_ENV = "REPRO_BACKEND"


class BackendUnavailableError(PlanningError):
    """The backend cannot be constructed here (missing wheel, bad name).

    Derives from :class:`~repro.util.errors.PlanningError` so the
    conformance cross-checker records the tier as *skipped*, mirroring
    how unplannable operators are handled.
    """


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do; consulted by routers before dispatching.

    ``supports_hints`` — accepts a physical tree whose join order must be
    reproduced; ``native_optimizer`` — has its own join-order optimizer
    worth A/B-ing against (False for the local engine, which *is* the
    optimizer under test); ``persistent`` — holds synced data across
    queries, making generation-keyed sync worthwhile.
    """

    name: str
    dialect: str
    supports_hints: bool
    native_optimizer: bool
    persistent: bool


class ExecutionBackend(ABC):
    """Abstract base: hold data, answer expression trees."""

    @property
    @abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Static descriptor of this backend's abilities."""

    @abstractmethod
    def sync(self, storage: Storage) -> bool:
        """Mirror ``storage`` into the backend; True iff data was pushed.

        Implementations key on :attr:`Storage.generation
        <repro.engine.storage.Storage.generation>`: a matching token
        means the backend's copy is current and nothing is transferred.
        """

    @abstractmethod
    def execute(
        self,
        expr: Expression,
        hint: Optional[Expression] = None,
        fingerprint: Optional[str] = None,
    ) -> Relation:
        """Evaluate ``expr`` against the synced data.

        ``hint`` is a physical tree (same semantics as ``expr``) whose
        join order the backend must follow; None lets the backend's own
        optimizer choose.  ``fingerprint`` (the PR-4 plan fingerprint)
        keys prepared-statement reuse: two calls with the same
        fingerprint and hint mode may reuse the compiled statement.
        """

    @abstractmethod
    def close(self) -> None:
        """Release connections; the backend must not be used afterwards."""

    def snapshot(self) -> Dict[str, object]:
        """Introspection counters for service books; override to extend."""
        return {"backend": self.capabilities.name}

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: name -> (factory, probe).  The probe answers "could the factory
#: succeed here?" without side effects; None means always available.
_REGISTRY: Dict[str, Tuple[Callable[..., ExecutionBackend], Optional[Callable[[], bool]]]] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend(
    name: str,
    factory: Callable[..., ExecutionBackend],
    probe: Optional[Callable[[], bool]] = None,
) -> None:
    """Register a backend factory under ``name`` (last registration wins)."""
    with _REGISTRY_LOCK:
        _REGISTRY[name] = (factory, probe)


def registered_backends() -> Tuple[str, ...]:
    """All registered names, available here or not, in sorted order."""
    _ensure_builtin()
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def available_backends() -> Tuple[str, ...]:
    """Registered names whose probe passes in this environment."""
    _ensure_builtin()
    with _REGISTRY_LOCK:
        items = list(_REGISTRY.items())
    return tuple(sorted(name for name, (_f, probe) in items if probe is None or probe()))


def create_backend(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a registered backend.

    Raises :class:`BackendUnavailableError` for unknown names and for
    registered-but-absent optional backends (e.g. DuckDB without the
    wheel), so callers can treat both uniformly as a skip.
    """
    _ensure_builtin()
    with _REGISTRY_LOCK:
        entry = _REGISTRY.get(name)
    if entry is None:
        raise BackendUnavailableError(
            f"unknown backend {name!r}; registered: {', '.join(registered_backends())}"
        )
    factory, _probe = entry
    return factory(**kwargs)


def default_backend_name() -> str:
    """The service's default route: ``$REPRO_BACKEND``, or ``local``."""
    return os.environ.get(BACKEND_ENV, "").strip() or "local"


_BUILTIN_DONE = False


def _ensure_builtin() -> None:
    """Import the built-in implementations exactly once (they self-register).

    Deferred so that ``repro.backends.base`` never drags sqlite3/duckdb
    imports into module load of unrelated code paths.
    """
    global _BUILTIN_DONE
    if _BUILTIN_DONE:
        return
    with _REGISTRY_LOCK:
        if _BUILTIN_DONE:
            return
        _BUILTIN_DONE = True
    import repro.backends.duckdb_backend  # noqa: F401  (self-registers)
    import repro.backends.local  # noqa: F401
    import repro.backends.sqlite_backend  # noqa: F401
