"""DuckDB as an optional execution backend.

The wheel is an optional dependency: the backend *registers* regardless
(so ``registered_backends()`` always lists it, and CI can assert the
skip path), but constructing it without the module raises
:class:`~repro.backends.base.BackendUnavailableError`, which the
conformance cross-checker and the service router both treat as a clean
skip.  The ``backend-matrix`` CI job runs the suite once with and once
without the wheel to keep both paths exercised.

DuckDB's planner reorders joins, so hinting disables its reordering
passes (``SET disabled_optimizers='join_order,build_side_probe_side'``)
and ships the physical tree as nested ``INNER JOIN`` sources in written
order — DuckDB rejects SQLite's ``CROSS JOIN ... ON`` spelling, hence
the dialect split in :mod:`repro.backends.hints`.  Tables are created
with inferred column types because DuckDB, unlike SQLite, is rigidly
typed; heterogeneous columns (the fuzzer mixes ints and strings) make
the load decline rather than miscompare.
"""

from __future__ import annotations

import importlib.util
import itertools
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.algebra.nulls import NULL, is_null
from repro.algebra.relation import Database, Relation
from repro.algebra.schema import SchemaRegistry
from repro.algebra.sqlrender import sql_identifier
from repro.algebra.tuples import Row
from repro.backends.base import (
    BackendCapabilities,
    BackendUnavailableError,
    ExecutionBackend,
    register_backend,
)
from repro.backends.hints import hinted_sql
from repro.backends.sqlite_backend import INSERT_BATCH
from repro.core.expressions import Expression
from repro.engine.storage import Storage
from repro.tools import instrumentation
from repro.util.errors import EvaluationError, PlanningError

#: Optimizer passes disabled while a hinted statement runs, per the
#: PostBOUND recipe for engines without hint comments.
HINT_DISABLED_PASSES = "join_order,build_side_probe_side"

_CAPS = BackendCapabilities(
    name="duckdb",
    dialect="duckdb",
    supports_hints=True,
    native_optimizer=True,
    persistent=True,
)


def duckdb_available() -> bool:
    """True when the optional ``duckdb`` wheel is importable."""
    return importlib.util.find_spec("duckdb") is not None


def _column_type(values: Iterable[object]) -> str:
    """Infer one DuckDB column type; decline heterogeneous columns."""
    kinds = set()
    for v in values:
        if is_null(v):
            continue
        if isinstance(v, bool):
            kinds.add("BOOLEAN")
        elif isinstance(v, int):
            kinds.add("BIGINT")
        elif isinstance(v, float):
            kinds.add("DOUBLE")
        elif isinstance(v, str):
            kinds.add("VARCHAR")
        else:
            raise PlanningError(
                f"duckdb backend declines: unsupported value type {type(v).__name__}"
            )
    if not kinds:
        return "BIGINT"
    if kinds == {"BIGINT", "DOUBLE"}:
        return "DOUBLE"
    if len(kinds) > 1:
        raise PlanningError(
            "duckdb backend declines: heterogeneous column "
            f"(types {sorted(kinds)}) has no lossless DuckDB type"
        )
    return kinds.pop()


class DuckDBBackend(ExecutionBackend):
    """Persistent in-memory DuckDB engine behind the backend interface."""

    def __init__(self) -> None:
        if not duckdb_available():
            raise BackendUnavailableError(
                "duckdb backend unavailable: the 'duckdb' module is not installed"
            )
        import duckdb

        self._conn = duckdb.connect(":memory:")
        self._lock = threading.RLock()
        self._registry: Optional[SchemaRegistry] = None
        self._generation: Optional[tuple] = None
        self._tables: Tuple[str, ...] = ()
        self._sql_cache: Dict[object, str] = {}
        self._closed = False
        self.counters: Dict[str, int] = {
            "syncs": 0,
            "sync_hits": 0,
            "loads": 0,
            "rows_loaded": 0,
            "queries": 0,
            "hinted_queries": 0,
            "statement_hits": 0,
            "statement_misses": 0,
        }

    @property
    def capabilities(self) -> BackendCapabilities:
        return _CAPS

    @property
    def registry(self) -> SchemaRegistry:
        if self._registry is None:
            raise EvaluationError("duckdb backend has no data; call sync() first")
        return self._registry

    # -- data ----------------------------------------------------------------

    def sync(self, storage: Storage) -> bool:
        with self._lock:
            self.counters["syncs"] += 1
            generation = storage.generation
            if generation == self._generation:
                self.counters["sync_hits"] += 1
                return False
            db = storage.to_database()
            self._load(db.registry, ((name, db[name]) for name in db))
            self._generation = generation
            return True

    def load_database(self, db: Database) -> None:
        """Load an algebra-level database directly (conformance path)."""
        with self._lock:
            self._load(db.registry, ((name, db[name]) for name in db))
            self._generation = None

    def _load(self, registry: SchemaRegistry, relations: Iterable[Tuple[str, Relation]]) -> None:
        self.counters["loads"] += 1
        self._sql_cache.clear()
        for name in self._tables:
            self._conn.execute(f"DROP TABLE IF EXISTS {sql_identifier(name)}")
        loaded: List[str] = []
        for name, relation in relations:
            cols = sorted(relation.schema.attributes)
            types = {c: _column_type(row[c] for row in relation) for c in cols}
            ddl = ", ".join(f"{sql_identifier(c)} {types[c]}" for c in cols)
            self._conn.execute(f"CREATE TABLE {sql_identifier(name)} ({ddl})")
            placeholders = ", ".join("?" for _ in cols)
            insert = f"INSERT INTO {sql_identifier(name)} VALUES ({placeholders})"
            rows = iter(relation)
            while True:
                batch = [
                    tuple(None if is_null(row[c]) else row[c] for c in cols)
                    for row in itertools.islice(rows, INSERT_BATCH)
                ]
                if not batch:
                    break
                self._conn.executemany(insert, batch)
                self.counters["rows_loaded"] += len(batch)
            loaded.append(name)
        self._tables = tuple(loaded)
        self._registry = registry

    # -- execution -----------------------------------------------------------

    def _statement(
        self,
        expr: Expression,
        hint: Optional[Expression],
        fingerprint: Optional[str],
    ) -> str:
        mode = "hinted" if hint is not None else "native"
        key: object = (mode, fingerprint) if fingerprint else (mode, hint or expr)
        hit = self._sql_cache.get(key)
        if hit is not None:
            self.counters["statement_hits"] += 1
            return hit
        self.counters["statement_misses"] += 1
        if hint is not None:
            sql, _cols = hinted_sql(hint, self.registry, dialect="duckdb")
        else:
            from repro.conformance.sqlite_oracle import to_sqlite_sql

            sql = to_sqlite_sql(expr, self.registry)
        self._sql_cache[key] = sql
        return sql

    def execute(
        self,
        expr: Expression,
        hint: Optional[Expression] = None,
        fingerprint: Optional[str] = None,
    ) -> Relation:
        with self._lock:
            self.counters["queries"] += 1
            sql = self._statement(expr, hint, fingerprint)
            instrumentation.bump("backend_duckdb_queries")
            if hint is not None:
                self.counters["hinted_queries"] += 1
                self._conn.execute(f"SET disabled_optimizers='{HINT_DISABLED_PASSES}'")
            try:
                cursor = self._conn.execute(sql)
                names = [d[0] for d in cursor.description]
                fetched = cursor.fetchall()
            finally:
                if hint is not None:
                    self._conn.execute("SET disabled_optimizers=''")
            rows = [
                Row({n: (NULL if v is None else v) for n, v in zip(names, row)})
                for row in fetched
            ]
            return Relation(names, rows)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"backend": "duckdb", "tables": len(self._tables), **self.counters}


register_backend("duckdb", DuckDBBackend, probe=duckdb_available)
