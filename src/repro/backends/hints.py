"""Join-order hinting: render a physical tree as order-forcing SQL.

PostBOUND forces a plan onto Postgres with ``pg_hint_plan`` comments;
SQLite has no hint comments, but it documents a stronger mechanism: the
``CROSS JOIN`` keyword is *never reordered* ("the CROSS JOIN join
operator ... is handled specially by the query optimizer: the order of
the two operands is not commuted"), and outer joins are order-fixed in
every engine.  So a physical tree lowers to SQL whose FROM clause is the
tree itself — every binary node an explicitly parenthesized join source:

.. code-block:: sql

    SELECT "A.a", "B.a", "C.a"
    FROM ((SELECT ... FROM "A" CROSS JOIN "B" ON ("A.a" = "B.a") LIMIT -1)
          AS h1 CROSS JOIN "C" ON (...))

``CROSS JOIN`` alone is not enough: SQLite's query *flattener* merges a
parenthesized join source into the enclosing FROM, collapsing a bushy or
right-deep tree into its linear leaf order — which can contain cartesian
products the tree never had (a right-deep star becomes ``L1 × L2``
before the hub constrains anything).  A subquery that uses LIMIT is
never flattened, and ``LIMIT -1`` means "no limit", so composite join
operands are fenced in one: the subtree evaluates as a unit exactly
where the tree says, and ``CROSS JOIN`` pins the operand order within
each binary join.

DuckDB keeps the written order once its reordering passes are off
(``SET disabled_optimizers='join_order,build_side_probe_side'``), so it
gets the plain nested shape with ``INNER JOIN`` spelling and no fences.

Three exports:

* :func:`join_shape` — the tree's order as nested name tuples, the
  ground truth hints are compared against (a ``RightOuterJoin`` shows up
  swapped, because ``X ← Y`` executes as ``Y LEFT JOIN X``);
* :func:`hinted_sql` — tree → ``(sql, columns)``;
* :func:`parse_join_shape` — SQL → shape, by re-parsing the emitted
  paren nesting; the round-trip test
  ``parse_join_shape(hinted_sql(t)) == join_shape(t)`` is what certifies
  that the hint really pins the order.
"""

from __future__ import annotations

from typing import List, Tuple, Union as TUnion

from repro.algebra.schema import SchemaRegistry
from repro.algebra.sqlrender import SQLRenderError, sql_identifier
from repro.core.expressions import (
    Expression,
    Join,
    LeftOuterJoin,
    Rel,
    Restrict,
    RightOuterJoin,
)
from repro.util.errors import PlanningError

#: A join shape: a leaf's base-table name, or a (left, right) pair.
JoinShape = TUnion[str, Tuple["JoinShape", "JoinShape"]]


class HintError(PlanningError):
    """The expression has no order-forcing SQL form (operator or predicate)."""


#: SQL join keyword per dialect, per operator kind.  ``CROSS JOIN`` is
#: SQLite's documented no-reorder spelling (it accepts an ON clause like
#: any inner join); DuckDB rejects ``CROSS JOIN ... ON``, so it gets
#: plain ``INNER JOIN`` and relies on disabled optimizer passes instead.
_INNER_KEYWORD = {"sqlite": "CROSS JOIN", "duckdb": "INNER JOIN"}


def join_shape(expr: Expression) -> JoinShape:
    """The execution order of a physical tree as nested name tuples.

    Mirrors evaluation: ``RightOuterJoin`` contributes ``(right, left)``
    because ``X ← Y`` evaluates (and transpiles) as ``Y LEFT JOIN X``.
    ``Restrict`` wrappers are transparent — a filtered scan occupies the
    same position as its base table.
    """
    if isinstance(expr, Rel):
        return expr.name
    if isinstance(expr, Restrict):
        return join_shape(expr.child)
    if isinstance(expr, (Join, LeftOuterJoin)):
        return (join_shape(expr.left), join_shape(expr.right))
    if isinstance(expr, RightOuterJoin):
        return (join_shape(expr.right), join_shape(expr.left))
    raise HintError(f"operator {type(expr).__name__} has no hinted-SQL form")


def _flat(shape: JoinShape) -> List[str]:
    if isinstance(shape, str):
        return [shape]
    return _flat(shape[0]) + _flat(shape[1])


def hinted_sql(
    expr: Expression, registry: SchemaRegistry, dialect: str = "sqlite"
) -> Tuple[str, List[str]]:
    """Render ``expr`` as one SELECT whose FROM clause pins the join order.

    Supported shapes are trees of Rel / Restrict / Join / LeftOuterJoin /
    RightOuterJoin — exactly the physical trees the optimizer emits
    (``PipelineResult.chosen``).  A ``Restrict`` over a non-leaf subtree
    becomes a named subquery, which still pins the order *inside* it.
    Raises :class:`HintError` for other operators and for predicates with
    no SQL rendering.
    """
    if dialect not in _INNER_KEYWORD:
        raise HintError(f"unknown hint dialect {dialect!r}")
    inner_kw = _INNER_KEYWORD[dialect]
    barriers = dialect == "sqlite"
    counter = [0]

    def alias() -> str:
        counter[0] += 1
        return f"h{counter[0]}"

    def pred_sql(predicate) -> str:
        try:
            return predicate.to_sql()
        except SQLRenderError as exc:
            raise HintError(str(exc)) from exc

    def operand(node: Expression) -> Tuple[str, List[str]]:
        """Render a join operand, barrier-wrapped when it contains joins.

        SQLite's query flattener merges a nested join source into the
        enclosing FROM, which turns a bushy or right-deep tree into its
        linear leaf order — and that order can contain cartesian products
        the tree never had.  A subquery using LIMIT is never flattened,
        and ``LIMIT -1`` means "no limit", so wrapping composite operands
        in one is a semantics-free evaluation fence: the subtree joins as
        a unit, exactly where the tree says it does.
        """
        src, cols, composite = render(node)
        if composite and barriers:
            collist = ", ".join(sql_identifier(c) for c in cols)
            return f"(SELECT {collist} FROM {src} LIMIT -1) AS {alias()}", cols
        return src, cols

    def render(node: Expression) -> Tuple[str, List[str], bool]:
        if isinstance(node, Rel):
            name = sql_identifier(node.name)
            return name, sorted(registry[node.name].attributes), False
        if isinstance(node, Restrict):
            src, cols, composite = render(node.child)
            collist = ", ".join(sql_identifier(c) for c in cols)
            where = pred_sql(node.predicate)
            fence = " LIMIT -1" if composite and barriers else ""
            return (
                f"(SELECT {collist} FROM {src} WHERE {where}{fence}) AS {alias()}",
                cols,
                False,
            )
        if isinstance(node, (Join, LeftOuterJoin, RightOuterJoin)):
            if isinstance(node, RightOuterJoin):
                first, second = node.right, node.left
                keyword = "LEFT JOIN"
            else:
                first, second = node.left, node.right
                keyword = "LEFT JOIN" if isinstance(node, LeftOuterJoin) else inner_kw
            lsrc, lcols = operand(first)
            rsrc, rcols = operand(second)
            on = pred_sql(node.predicate)
            return f"({lsrc} {keyword} {rsrc} ON {on})", lcols + rcols, True
        raise HintError(f"operator {type(node).__name__} has no hinted-SQL form")

    src, cols, _composite = render(expr)
    collist = ", ".join(sql_identifier(c) for c in cols)
    return f"SELECT {collist} FROM {src}", cols


# ---------------------------------------------------------------------------
# Round-trip parser
# ---------------------------------------------------------------------------

_JOIN_STARTERS = {"CROSS", "LEFT", "INNER", "JOIN"}


def _tokenize(sql: str) -> List[Tuple[str, str]]:
    """Lex into (kind, text): ident / str / punct / word / op tokens."""
    out: List[Tuple[str, str]] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            parts: List[str] = []
            while j < n:
                if sql[j] == quote:
                    if j + 1 < n and sql[j + 1] == quote:  # doubled escape
                        parts.append(quote)
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            else:
                raise HintError(f"unterminated {quote} quote in hinted SQL")
            out.append(("ident" if quote == '"' else "str", "".join(parts)))
            i = j + 1
            continue
        if ch in "(),":
            out.append(("punct", ch))
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] in "_."):
                j += 1
            out.append(("word", sql[i:j].upper()))
            i = j
            continue
        j = i
        while j < n and not sql[j].isspace() and sql[j] not in "(),\"'":
            j += 1
        out.append(("op", sql[i:j]))
        i = j
    return out


class _TokenStream:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Tuple[str, str]:
        if self.pos >= len(self.tokens):
            return ("eof", "")
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, kind: str, text: str = "") -> Tuple[str, str]:
        tok = self.next()
        if tok[0] != kind or (text and tok[1] != text):
            raise HintError(f"hinted-SQL parse: expected {kind} {text!r}, got {tok}")
        return tok


def _skip_to_from(ts: _TokenStream) -> None:
    """Consume the select list up to the matching top-level FROM."""
    depth = 0
    while True:
        kind, text = ts.next()
        if kind == "eof":
            raise HintError("hinted-SQL parse: no FROM clause")
        if kind == "punct" and text == "(":
            depth += 1
        elif kind == "punct" and text == ")":
            depth -= 1
        elif kind == "word" and text == "FROM" and depth == 0:
            return


def _skip_group(ts: _TokenStream) -> None:
    """Consume one balanced ``( ... )`` group (the ON predicate)."""
    ts.expect("punct", "(")
    depth = 1
    while depth:
        kind, text = ts.next()
        if kind == "eof":
            raise HintError("hinted-SQL parse: unbalanced ON group")
        if kind == "punct" and text == "(":
            depth += 1
        elif kind == "punct" and text == ")":
            depth -= 1


def _skip_to_close(ts: _TokenStream) -> None:
    """Consume the rest of a subquery (e.g. its WHERE) up to its ``)``."""
    depth = 0
    while True:
        kind, text = ts.next()
        if kind == "eof":
            raise HintError("hinted-SQL parse: unbalanced subquery")
        if kind == "punct" and text == "(":
            depth += 1
        elif kind == "punct" and text == ")":
            if depth == 0:
                return
            depth -= 1


def _parse_unit(ts: _TokenStream) -> JoinShape:
    kind, text = ts.next()
    if kind == "ident":
        return text
    if kind == "punct" and text == "(":
        if ts.peek() == ("word", "SELECT"):
            ts.next()
            _skip_to_from(ts)
            inner = _parse_source(ts)
            _skip_to_close(ts)
            if ts.peek() == ("word", "AS"):
                ts.next()
                ts.next()  # the alias
            return inner
        inner = _parse_source(ts)
        ts.expect("punct", ")")
        return inner
    raise HintError(f"hinted-SQL parse: unexpected token {(kind, text)}")


def _parse_source(ts: _TokenStream) -> JoinShape:
    shape = _parse_unit(ts)
    while ts.peek()[0] == "word" and ts.peek()[1] in _JOIN_STARTERS:
        while ts.peek() != ("word", "JOIN"):
            if ts.next()[0] == "eof":
                raise HintError("hinted-SQL parse: dangling join keyword")
        ts.next()  # JOIN
        right = _parse_unit(ts)
        ts.expect("word", "ON")
        _skip_group(ts)
        shape = (shape, right)
    return shape


def parse_join_shape(sql: str) -> JoinShape:
    """Recover the join order from hinted SQL by re-parsing its nesting.

    Inverse of :func:`hinted_sql` on the grammar it emits (quoted
    identifiers, parenthesized join sources, subquery leaves, always-
    parenthesized ON groups); used by the round-trip conformance test.
    """
    ts = _TokenStream(_tokenize(sql))
    ts.expect("word", "SELECT")
    _skip_to_from(ts)
    return _parse_source(ts)


def hinted_tables(expr: Expression) -> List[str]:
    """Base tables in hint order (left-to-right leaf walk of the shape)."""
    return _flat(join_shape(expr))
