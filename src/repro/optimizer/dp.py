"""Dynamic-programming optimizer over join/outerjoin query graphs.

Section 6.1: "Optimizers already implement a query graph by generating
expression trees with different associations of the graph edges; now it
must fill in Join or else Outerjoin (preserving the operator direction).
There is no need to insert additional operators, or perform a subtle
analysis."  This DP does exactly that: it enumerates connected subgraphs,
combines them through cuts that support a single operator, and keeps the
cheapest plan per node set.  On a freely-reorderable (nice + strong) graph
every plan the DP can produce is an implementing tree and hence evaluates
to the query's one true result — correctness comes from Theorem 1, not
from optimizer-side case analysis.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.core.expressions import Join, LeftOuterJoin, Rel, RightOuterJoin
from repro.core.graph import QueryGraph
from repro.observability.spans import maybe_span
from repro.optimizer.cost import CostModel
from repro.optimizer.plans import Plan
from repro.optimizer.subgraphs import combinable_pairs, connected_subsets
from repro.tools import instrumentation
from repro.util.errors import PlanningError
from repro.util.fastpath import fast_enabled

_KIND_TO_ESTIMATOR = {"join": "join", "loj": "left_outer", "roj": "left_outer"}


class DPOptimizer:
    """Exact (cost-model-optimal) optimizer via DP over connected subsets."""

    def __init__(self, graph: QueryGraph, cost_model: CostModel):
        self.graph = graph
        self.cost_model = cost_model

    def optimize(self) -> Plan:
        """The cheapest implementing tree of the graph under the cost model."""
        if not self.graph.is_connected():
            raise PlanningError("cannot optimize a disconnected query graph")
        estimator = self.cost_model.estimator
        index = self.graph.bitset_index() if fast_enabled() else None
        with maybe_span(
            "optimizer.dp",
            category="optimizer",
            relations=len(self.graph.nodes),
            fast_kernels=fast_enabled(),
        ) as span:
            with estimator.memo_scope(index):
                plan = self._optimize_table(estimator, span)
        instrumentation.bump("plans_optimized")
        return plan

    def _optimize_table(self, estimator, span=None) -> Plan:
        best: Dict[FrozenSet[str], Plan] = {}
        for subset in connected_subsets(self.graph):
            if len(subset) == 1:
                name = next(iter(subset))
                best[subset] = Plan(
                    Rel(name), estimator.base(name), self.cost_model.leaf_cost(name)
                )
                continue
            candidate: Optional[Plan] = None
            for side_a, side_b, kind, predicate in combinable_pairs(self.graph, subset):
                left = best.get(side_a)
                right = best.get(side_b)
                if left is None or right is None:
                    continue
                if kind == "join":
                    expr = Join(left.expr, right.expr, predicate)
                    est_left, est_right = left, right
                elif kind == "loj":
                    expr = LeftOuterJoin(left.expr, right.expr, predicate)
                    est_left, est_right = left, right
                else:  # "roj": the preserved side is side_b
                    expr = RightOuterJoin(left.expr, right.expr, predicate)
                    est_left, est_right = right, left
                estimate = estimator.combine(
                    _KIND_TO_ESTIMATOR[kind], predicate, est_left.estimate, est_right.estimate
                )
                extra = self.cost_model.combine_cost(
                    _KIND_TO_ESTIMATOR[kind], predicate, est_left, est_right, estimate
                )
                cost = left.cost + right.cost + extra
                if candidate is None or cost < candidate.cost:
                    candidate = Plan(expr, estimate, cost)
            if candidate is not None:
                # Subsets with no combinable partition simply never become
                # building blocks (they implement nothing; e.g. part of an
                # outerjoin cycle).
                best[subset] = candidate
        final = best.get(self.graph.nodes)
        if final is None:
            raise PlanningError(
                "the query graph has no implementing trees (no legal cut "
                "decomposition exists)"
            )
        instrumentation.bump("dp_subsets", len(best))
        if span is not None:
            span.counters["dp_subsets"] = len(best)
            span.set(cost=final.cost)
        return final


def optimize_graph(graph: QueryGraph, cost_model: CostModel) -> Plan:
    """Convenience wrapper around :class:`DPOptimizer`."""
    return DPOptimizer(graph, cost_model).optimize()
