"""A greedy join/outerjoin ordering heuristic.

The classic alternative to exact DP: repeatedly merge the pair of
connected components whose combination is cheapest, until one component
(the full plan) remains.  Uses the same cut-legality rule as the DP, so on
nice graphs every plan it emits is an implementing tree.  Greedy is
included as the scalability baseline in the optimizer benchmarks: it
explores O(n^3) combinations instead of the DP's exponential table, at the
price of missing the optimum on adversarial cardinalities.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.enumeration import root_operator
from repro.core.expressions import Join, LeftOuterJoin, Rel, RightOuterJoin
from repro.core.graph import QueryGraph
from repro.optimizer.cost import CostModel
from repro.optimizer.plans import Plan
from repro.tools import instrumentation
from repro.util.errors import PlanningError
from repro.util.fastpath import fast_enabled

_KIND_TO_ESTIMATOR = {"join": "join", "loj": "left_outer", "roj": "left_outer"}


class GreedyOptimizer:
    """Cheapest-merge-first planning over the query graph."""

    def __init__(self, graph: QueryGraph, cost_model: CostModel):
        self.graph = graph
        self.cost_model = cost_model

    def _combine(
        self, a: Plan, b: Plan
    ) -> Optional[Plan]:
        """The cheaper of the two orientations of merging components a, b."""
        estimator = self.cost_model.estimator
        best: Optional[Plan] = None
        for left, right in ((a, b), (b, a)):
            op = root_operator(self.graph, left.nodes, right.nodes)
            if op is None:
                continue
            kind, predicate = op
            if kind == "join":
                expr = Join(left.expr, right.expr, predicate)
                est_left, est_right = left, right
            elif kind == "loj":
                expr = LeftOuterJoin(left.expr, right.expr, predicate)
                est_left, est_right = left, right
            else:
                expr = RightOuterJoin(left.expr, right.expr, predicate)
                est_left, est_right = right, left
            estimate = estimator.combine(
                _KIND_TO_ESTIMATOR[kind], predicate, est_left.estimate, est_right.estimate
            )
            extra = self.cost_model.combine_cost(
                _KIND_TO_ESTIMATOR[kind], predicate, est_left, est_right, estimate
            )
            plan = Plan(expr, estimate, left.cost + right.cost + extra)
            if best is None or plan.cost < best.cost:
                best = plan
        return best

    def optimize(self) -> Plan:
        if not self.graph.is_connected():
            raise PlanningError("cannot optimize a disconnected query graph")
        estimator = self.cost_model.estimator
        index = self.graph.bitset_index() if fast_enabled() else None
        with estimator.memo_scope(index):
            plan = self._optimize_merges(estimator)
        instrumentation.bump("plans_optimized")
        return plan

    def _optimize_merges(self, estimator) -> Plan:
        components: Dict[FrozenSet[str], Plan] = {
            frozenset({n}): Plan(Rel(n), estimator.base(n), self.cost_model.leaf_cost(n))
            for n in self.graph.nodes
        }
        while len(components) > 1:
            keys: List[FrozenSet[str]] = list(components)
            best_merge: Optional[Tuple[FrozenSet[str], FrozenSet[str], Plan]] = None
            for i in range(len(keys)):
                for j in range(i + 1, len(keys)):
                    merged = self._combine(components[keys[i]], components[keys[j]])
                    if merged is None:
                        continue
                    if best_merge is None or merged.cost < best_merge[2].cost:
                        best_merge = (keys[i], keys[j], merged)
            if best_merge is None:
                raise PlanningError(
                    "greedy merge is stuck: no pair of components is combinable "
                    "(the graph has no implementing trees)"
                )
            ka, kb, plan = best_merge
            del components[ka], components[kb]
            components[plan.nodes] = plan
        return next(iter(components.values()))


def greedy_optimize(graph: QueryGraph, cost_model: CostModel) -> Plan:
    return GreedyOptimizer(graph, cost_model).optimize()
