"""A transformation-based optimizer over result-preserving basic transforms.

The DP of :mod:`repro.optimizer.dp` plans from the *graph*.  This module
is the other classic architecture (Volcano/Cascades style): start from
the query **as written** and search the space reachable by
result-preserving basic transforms, keeping the cheapest tree seen.

Why it is interesting here: Theorem 1's proof shows that, on nice+strong
graphs, the preserving-BT closure of any implementing tree is the *whole*
IT space — so on freely-reorderable queries this rewriter explores
exactly the DP's plan space and (run exhaustively) finds the same
optimum, while on non-reorderable queries it degrades safely: it only
ever emits trees provably equal to the input, never needing a
reorderability precheck.  That safety-by-construction is the rewrite
architecture's classic selling point, and Theorem 1 is what makes it
*complete* rather than merely safe.

Two search modes:

* ``exhaustive`` — BFS the preserving closure (exact; exponential);
* ``hill_climb`` — repeatedly apply the best single improving transform
  (cheap; may stop at a local optimum).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Set

from repro.algebra.schema import SchemaRegistry
from repro.core.expressions import Expression
from repro.core.transforms import (
    applicable_transforms,
    apply_transform,
    canonicalize,
    classify_transform,
)
from repro.optimizer.cost import CostModel
from repro.optimizer.plans import Plan


@dataclass
class RewriteResult:
    """Outcome of a rewrite search."""

    best: Plan
    start_cost: float
    trees_explored: int
    improved: bool


class RewriteOptimizer:
    """Search the result-preserving BT space from a written query."""

    def __init__(self, registry: SchemaRegistry, cost_model: CostModel):
        self.registry = registry
        self.cost_model = cost_model

    def _plan_for(self, expr: Expression) -> Plan:
        estimate = self.cost_model.estimator.estimate_expression(expr)
        return Plan(expr, estimate, self.cost_model.plan_cost(expr))

    def optimize_exhaustive(
        self, query: Expression, max_trees: Optional[int] = 20_000
    ) -> RewriteResult:
        """BFS over the preserving closure, tracking the cheapest tree."""
        start = canonicalize(query)
        start_plan = self._plan_for(start)
        best = start_plan
        seen: Set[Expression] = {start}
        frontier: deque[Expression] = deque([start])
        while frontier:
            tree = frontier.popleft()
            for transform in applicable_transforms(tree, self.registry):
                if not classify_transform(tree, transform, self.registry).preserving:
                    continue
                successor = canonicalize(apply_transform(tree, transform, self.registry))
                if successor in seen:
                    continue
                seen.add(successor)
                plan = self._plan_for(successor)
                if plan.cost < best.cost:
                    best = plan
                if max_trees is None or len(seen) < max_trees:
                    frontier.append(successor)
        return RewriteResult(
            best=best,
            start_cost=start_plan.cost,
            trees_explored=len(seen),
            improved=best.cost < start_plan.cost - 1e-9,
        )

    def optimize_hill_climb(
        self, query: Expression, max_steps: int = 200
    ) -> RewriteResult:
        """Greedy local search: take the best improving transform until none."""
        current = canonicalize(query)
        current_plan = self._plan_for(current)
        start_cost = current_plan.cost
        explored = 1
        for _ in range(max_steps):
            best_neighbor: Optional[Plan] = None
            for transform in applicable_transforms(current, self.registry):
                if not classify_transform(current, transform, self.registry).preserving:
                    continue
                successor = canonicalize(apply_transform(current, transform, self.registry))
                plan = self._plan_for(successor)
                explored += 1
                if best_neighbor is None or plan.cost < best_neighbor.cost:
                    best_neighbor = plan
            if best_neighbor is None or best_neighbor.cost >= current_plan.cost - 1e-9:
                break
            current_plan = best_neighbor
            current = best_neighbor.expr
        return RewriteResult(
            best=current_plan,
            start_cost=start_cost,
            trees_explored=explored,
            improved=current_plan.cost < start_cost - 1e-9,
        )
