"""Baseline strategies: what an optimizer does *without* Theorem 1.

The paper's motivation (Sections 1.1, 6.1) is that a conventional
optimizer, lacking the free-reorderability analysis, must treat outerjoins
as barriers: joins may be reordered within outerjoin-free regions, but no
operator may cross an outerjoin.  Two baselines capture the spectrum:

* :func:`fixed_order_plan` — execute the query exactly as written (no
  reordering at all);
* :class:`OuterjoinBarrierOptimizer` — reorder joins freely *inside* each
  maximal join-only region, but keep every outerjoin where the original
  tree put it (its operands are optimized recursively as black boxes).

The optimizer-comparison benchmark pits these against the DP of
:mod:`repro.optimizer.dp`, which reorders across outerjoins because
Theorem 1 says it may.
"""

from __future__ import annotations

from typing import List

from repro.core.expressions import (
    Expression,
    Join,
    LeftOuterJoin,
    Rel,
    RightOuterJoin,
)
from repro.optimizer.cost import CostModel
from repro.optimizer.dp import DPOptimizer
from repro.optimizer.plans import Plan


def fixed_order_plan(expr: Expression, cost_model: CostModel) -> Plan:
    """Cost the tree exactly as written."""
    estimator = cost_model.estimator
    return Plan(expr, estimator.estimate_expression(expr), cost_model.plan_cost(expr))


class OuterjoinBarrierOptimizer:
    """Join-only reordering with outerjoins pinned in place.

    Every maximal join-connected cluster of operands is re-optimized with
    the DP (joins only); outerjoin nodes keep their position and
    direction, their operands being optimized recursively.  This emulates
    a pre-Theorem-1 optimizer faithfully: it *is* allowed to reorder
    joins, it just refuses to move anything past an outerjoin.
    """

    def __init__(self, registry, cost_model: CostModel):
        self.registry = registry
        self.cost_model = cost_model

    def optimize(self, expr: Expression) -> Plan:
        optimized = self._optimize_expr(expr)
        return fixed_order_plan(optimized, self.cost_model)

    def _optimize_expr(self, expr: Expression) -> Expression:
        if isinstance(expr, Rel):
            return expr
        if isinstance(expr, (LeftOuterJoin, RightOuterJoin)):
            # The outerjoin is a barrier: recurse into both operands but
            # keep the operator itself fixed.
            return expr.with_parts(
                self._optimize_expr(expr.left), self._optimize_expr(expr.right)
            )
        if isinstance(expr, Join):
            # Collect the maximal join-connected cluster rooted here.
            operands = self._join_cluster_operands(expr)
            optimized_operands = [self._optimize_expr(op) for op in operands]
            return self._reorder_cluster(expr, optimized_operands)
        raise ValueError(f"baseline cannot optimize {type(expr).__name__}")

    def _join_cluster_operands(self, expr: Expression) -> List[Expression]:
        """Flatten a maximal tree of Join nodes into its operand list."""
        if isinstance(expr, Join):
            return self._join_cluster_operands(expr.left) + self._join_cluster_operands(
                expr.right
            )
        return [expr]

    def _reorder_cluster(self, cluster_root: Join, operands: List[Expression]) -> Expression:
        """DP-reorder one join cluster, treating operands as pseudo-tables.

        The operand expressions become temporary "relations" whose schemes
        are their output schemes; the cluster's join conjuncts connect
        them.  Running the shared DP on this operand-level graph reorders
        joins without ever crossing an outerjoin boundary.
        """
        if len(operands) <= 1:
            return operands[0]
        # Map each operand to a placeholder name, build the operand graph.
        placeholder: dict[str, Expression] = {}
        rel_to_placeholder: dict[str, str] = {}
        for i, op in enumerate(operands):
            name = f"__cluster{i}"
            placeholder[name] = op
            for rel_name in op.relations():
                rel_to_placeholder[rel_name] = name

        # Rebuild the cluster's conjuncts against placeholders.
        conjuncts = self._cluster_conjuncts(cluster_root, set(id(o) for o in operands))
        from repro.core.graph import QueryGraph

        join_triples = []
        for conjunct in conjuncts:
            owners = sorted(self.registry.owners(conjunct.attributes()))
            pa = rel_to_placeholder[owners[0]]
            pb = rel_to_placeholder[owners[1]]
            if pa == pb:
                # A conjunct internal to one operand: leave it to recursion.
                continue
            join_triples.append((pa, pb, conjunct))
        graph = QueryGraph.from_edges(join=join_triples, isolated=list(placeholder))
        if not graph.is_connected():
            # Cross-operand predicates do not connect everything (can happen
            # when an operand pair only relates through an outerjoin deeper
            # down); fall back to the written order.
            return cluster_root

        cluster_model = _PlaceholderCostModel(self.cost_model, placeholder, self.registry)
        plan = DPOptimizer(graph, cluster_model).optimize()
        return _substitute_placeholders(plan.expr, placeholder)

    def _cluster_conjuncts(self, expr: Expression, operand_ids) -> List:
        if id(expr) in operand_ids or not isinstance(expr, Join):
            return []
        return (
            list(expr.predicate.conjuncts())
            + self._cluster_conjuncts(expr.left, operand_ids)
            + self._cluster_conjuncts(expr.right, operand_ids)
        )


def _substitute_placeholders(expr: Expression, placeholder) -> Expression:
    if isinstance(expr, Rel):
        return placeholder.get(expr.name, expr)
    return expr.with_parts(
        _substitute_placeholders(expr.left, placeholder),
        _substitute_placeholders(expr.right, placeholder),
    )


class _PlaceholderCostModel(CostModel):
    """Adapts the real cost model to operand placeholders.

    A placeholder's base estimate is the estimate of the expression it
    stands for; combination costs delegate to the wrapped model.
    """

    def __init__(self, inner: CostModel, placeholder, registry):
        self.inner = inner
        self.placeholder = placeholder
        self.registry = registry
        self.estimator = _PlaceholderEstimator(inner.estimator, placeholder)

    def leaf_cost(self, name: str) -> float:
        expr = self.placeholder[name]
        return self.inner.plan_cost(expr) if not isinstance(expr, Rel) else self.inner.leaf_cost(expr.name)

    def _resolve(self, plan: Plan) -> Plan:
        """Swap placeholder leaves back for their real expressions so the
        wrapped model can reason about access paths."""
        expr = _substitute_placeholders(plan.expr, self.placeholder)
        if expr is plan.expr:
            return plan
        return Plan(expr, plan.estimate, plan.cost)

    def combine_cost(self, kind, predicate, left, right, estimate) -> float:
        return self.inner.combine_cost(
            kind, predicate, self._resolve(left), self._resolve(right), estimate
        )


class _PlaceholderEstimator:
    """Estimator view where each placeholder reports its expression's stats."""

    def __init__(self, inner, placeholder):
        self.inner = inner
        self.placeholder = placeholder

    def memo_scope(self, index=None):
        return self.inner.memo_scope(index)

    def base(self, name: str):
        expr = self.placeholder[name]
        est = self.inner.estimate_expression(expr)
        # Re-key to the placeholder name so the DP's node bookkeeping works.
        return type(est)(
            nodes=frozenset({name}), cardinality=est.cardinality, distinct=dict(est.distinct)
        )

    def combine(self, kind, predicate, left, right):
        return self.inner.combine(kind, predicate, left, right)

    def join_selectivity(self, predicate, left, right):
        return self.inner.join_selectivity(predicate, left, right)

    def estimate_expression(self, expr):
        return self.inner.estimate_expression(expr)
