"""Cardinality estimation for join/outerjoin plans.

A System-R-style estimator: equi-join selectivity ``1 / max(V(a), V(b))``
over distinct counts, constant selectivities for inequalities and opaque
predicates, with distinct counts propagated (capped by output cardinality)
through intermediate results.  Outerjoins estimate as
``max(join_cardinality, |preserved|)`` — the preserved side never shrinks,
which is precisely the property that makes outerjoin placement matter so
much for cost (Example 1).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.algebra.predicates import AttrRef, Comparison, Predicate
from repro.core.expressions import Expression
from repro.engine.storage import Storage

#: Default selectivity for non-equality comparisons (System R's 1/3).
INEQUALITY_SELECTIVITY = 1.0 / 3.0
#: Default selectivity for predicates the estimator cannot analyze.
OPAQUE_SELECTIVITY = 0.2


@dataclass
class EstimateInfo:
    """Cardinality summary of a (sub)plan."""

    nodes: FrozenSet[str]
    cardinality: float
    distinct: Dict[str, float] = field(default_factory=dict)

    def distinct_of(self, attribute: str) -> float:
        return max(1.0, min(self.distinct.get(attribute, self.cardinality), self.cardinality))


class CardinalityEstimator:
    """Estimates over the statistics of a :class:`Storage`.

    Within a :meth:`memo_scope`, :meth:`base` and :meth:`combine` results
    are memoized — keyed by the operand subsets' *bitset masks* when the
    scope was opened with a :class:`~repro.core.bitset.BitsetIndex` (the
    optimizers pass their graph's index), by the node frozensets
    otherwise.  Estimates are pure functions of those keys as long as the
    storage statistics do not change, which is why the memo is scoped to
    one optimizer run instead of living on the estimator.
    """

    def __init__(self, storage: Storage):
        self.storage = storage
        self._memo: Optional[Dict[tuple, EstimateInfo]] = None
        self._memo_index = None

    @contextmanager
    def memo_scope(self, index=None):
        """Memoize estimates for the duration of one optimizer run."""
        previous = (self._memo, self._memo_index)
        self._memo = {}
        self._memo_index = index
        try:
            yield
        finally:
            self._memo, self._memo_index = previous

    def _subset_key(self, nodes: FrozenSet[str]):
        if self._memo_index is not None:
            try:
                return self._memo_index.mask_of(nodes)
            except KeyError:
                # Nodes outside the scope's graph (e.g. real relations seen
                # while a placeholder-graph scope is active): frozenset keys
                # still memoize correctly, they just skip the mask encoding.
                return nodes
        return nodes

    def base(self, name: str) -> EstimateInfo:
        memo = self._memo
        if memo is not None:
            key = ("base", name)
            hit = memo.get(key)
            if hit is not None:
                return hit
        table = self.storage[name]
        stats = table.stats()
        distinct = {attr: float(max(1, cs.distinct)) for attr, cs in stats.items()}
        info = EstimateInfo(
            nodes=frozenset({name}), cardinality=float(len(table)), distinct=distinct
        )
        if memo is not None:
            memo[key] = info
        return info

    # -- selectivities -----------------------------------------------------------

    def conjunct_selectivity(
        self, conjunct: Predicate, left: EstimateInfo, right: EstimateInfo
    ) -> float:
        if isinstance(conjunct, Comparison) and isinstance(conjunct.left, AttrRef) and isinstance(
            conjunct.right, AttrRef
        ):
            a, b = conjunct.left.name, conjunct.right.name
            side_of_a = left if a in left.distinct else right
            side_of_b = left if b in left.distinct else right
            if conjunct.op == "=":
                return 1.0 / max(side_of_a.distinct_of(a), side_of_b.distinct_of(b))
            return INEQUALITY_SELECTIVITY
        return OPAQUE_SELECTIVITY

    def join_selectivity(
        self, predicate: Predicate, left: EstimateInfo, right: EstimateInfo
    ) -> float:
        selectivity = 1.0
        for conjunct in predicate.conjuncts():
            selectivity *= self.conjunct_selectivity(conjunct, left, right)
        return selectivity

    # -- operator estimates ---------------------------------------------------------

    def combine(
        self, kind: str, predicate: Predicate, left: EstimateInfo, right: EstimateInfo
    ) -> EstimateInfo:
        """Estimate the output of a join-like operator.

        ``kind`` is one of ``"join"``, ``"left_outer"`` (left side
        preserved), ``"semi"``, ``"anti"``.
        """
        memo = self._memo
        key = None
        if memo is not None:
            lk, rk = self._subset_key(left.nodes), self._subset_key(right.nodes)
            if kind == "join" and isinstance(lk, int):
                # Join estimates are symmetric in the operands (the
                # cardinality product and the distinct merge both are), so
                # both orientations of a pair share one memo entry.  Masks
                # are totally ordered; frozensets are not, so the naive
                # path keeps orientation-specific entries.
                key = (kind, predicate, min(lk, rk), max(lk, rk))
            else:
                key = (kind, predicate, lk, rk)
            hit = memo.get(key)
            if hit is not None:
                return hit
        selectivity = self.join_selectivity(predicate, left, right)
        join_card = left.cardinality * right.cardinality * selectivity
        if kind == "join":
            card = join_card
        elif kind == "left_outer":
            card = max(join_card, left.cardinality)
        elif kind == "semi":
            card = left.cardinality * min(1.0, right.cardinality * selectivity)
        elif kind == "anti":
            card = left.cardinality * max(0.0, 1.0 - right.cardinality * selectivity)
        else:
            raise ValueError(f"unknown operator kind {kind!r}")
        card = max(card, 0.0)
        distinct: Dict[str, float] = {}
        for source in (left, right):
            for attr, v in source.distinct.items():
                distinct[attr] = min(v, max(card, 1.0))
        info = EstimateInfo(
            nodes=left.nodes | right.nodes, cardinality=card, distinct=distinct
        )
        if memo is not None:
            memo[key] = info
        return info

    def estimate_expression(self, expr: Expression) -> EstimateInfo:
        """Estimate any join/outerjoin expression tree bottom-up."""
        from repro.core.expressions import (
            Antijoin,
            Join,
            LeftOuterJoin,
            Rel,
            RightAntijoin,
            RightOuterJoin,
            Semijoin,
        )

        if isinstance(expr, Rel):
            return self.base(expr.name)
        if isinstance(expr, Join):
            return self.combine(
                "join",
                expr.predicate,
                self.estimate_expression(expr.left),
                self.estimate_expression(expr.right),
            )
        if isinstance(expr, LeftOuterJoin):
            return self.combine(
                "left_outer",
                expr.predicate,
                self.estimate_expression(expr.left),
                self.estimate_expression(expr.right),
            )
        if isinstance(expr, RightOuterJoin):
            return self.combine(
                "left_outer",
                expr.predicate,
                self.estimate_expression(expr.right),
                self.estimate_expression(expr.left),
            )
        if isinstance(expr, Semijoin):
            return self.combine(
                "semi",
                expr.predicate,
                self.estimate_expression(expr.left),
                self.estimate_expression(expr.right),
            )
        if isinstance(expr, (Antijoin, RightAntijoin)):
            left, right = (
                (expr.left, expr.right) if isinstance(expr, Antijoin) else (expr.right, expr.left)
            )
            return self.combine(
                "anti",
                expr.predicate,
                self.estimate_expression(left),
                self.estimate_expression(right),
            )
        raise ValueError(f"cannot estimate {type(expr).__name__}")
