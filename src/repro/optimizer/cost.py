"""Cost models for join/outerjoin plans.

Two models, matching the two ways the paper talks about cost:

* :class:`CoutCostModel` — the classic ``C_out``: the cost of a plan is
  the sum of the (estimated) cardinalities of all intermediate results.
  This is access-path agnostic and is the model used in the optimizer
  comparison benchmarks.

* :class:`RetrievalCostModel` — Example 1's currency: estimated *base
  tuples retrieved*, aware of access paths.  A base relation used as the
  inner of an equi-join with an index costs the expected number of
  matching probes instead of a full scan, which is exactly why
  ``(R1 − R2) → R3`` costs 3 retrievals while ``R1 − (R2 → R3)`` costs
  ``2·10^7 + 1``.

Both models are *monotone* in the DP sense (the cost of a plan only grows
when a subplan's cost grows), so dynamic programming over connected
subgraphs is safe with either.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping

from repro.algebra.predicates import Predicate
from repro.core.expressions import Expression, Rel
from repro.engine.planner import split_equijoin
from repro.engine.storage import Storage
from repro.optimizer.cardinality import CardinalityEstimator, EstimateInfo
from repro.optimizer.plans import Plan


class CostModel:
    """Interface: incremental cost of combining two subplans."""

    def __init__(self, estimator: CardinalityEstimator):
        self.estimator = estimator

    def leaf_cost(self, name: str) -> float:
        raise NotImplementedError

    def combine_cost(
        self, kind: str, predicate: Predicate, left: Plan, right: Plan, estimate: EstimateInfo
    ) -> float:
        """Extra cost the new operator adds on top of its children's costs."""
        raise NotImplementedError

    def plan_cost(self, expr: Expression) -> float:
        """Cost an existing expression tree (baselines use this)."""
        from repro.core.expressions import (
            Join,
            LeftOuterJoin,
            RightOuterJoin,
        )

        def walk(node: Expression) -> Plan:
            if isinstance(node, Rel):
                est = self.estimator.base(node.name)
                return Plan(node, est, self.leaf_cost(node.name))
            if isinstance(node, Join):
                kind, left_node, right_node = "join", node.left, node.right
            elif isinstance(node, LeftOuterJoin):
                kind, left_node, right_node = "left_outer", node.left, node.right
            elif isinstance(node, RightOuterJoin):
                # Preserved side first, matching the estimator convention.
                kind, left_node, right_node = "left_outer", node.right, node.left
            else:
                raise ValueError(f"cannot cost {type(node).__name__}")
            left = walk(left_node)
            right = walk(right_node)
            est = self.estimator.combine(kind, node.predicate, left.estimate, right.estimate)
            extra = self.combine_cost(kind, node.predicate, left, right, est)
            return Plan(node, est, left.cost + right.cost + extra)

        return walk(expr).cost


def agm_bound(
    hyperedges: Mapping[str, FrozenSet[str]],
    cardinalities: Mapping[str, float],
) -> float:
    """An AGM-style fractional-cover bound on the join output size.

    AGM (Atserias–Grohe–Marx) bounds the output of a full conjunctive
    query by ``Π |R|^{w_R}`` for any *fractional edge cover* ``w`` — any
    weighting of the relations with ``Σ_{R ∋ v} w_R ≥ 1`` for every
    variable ``v``.  We use the closed-form feasible cover
    ``w_R = max_{v ∈ R} 1/deg(v)`` (each variable ``v`` then collects at
    least ``deg(v) · 1/deg(v) = 1``), which is not always the *optimal*
    cover but is exact on the symmetric cyclic shapes the dispatch gate
    cares about: the triangle gets ``w ≡ 1/2`` and bound ``√(Π|R|)``,
    the k-clique ``w ≡ 1/(k-1)``.  An upper bound from a feasible cover
    is a sound gate either way — it can only overestimate, never let a
    too-optimistic WCOJ estimate through.
    """
    degree: dict = {}
    for vertices in hyperedges.values():
        for vertex in vertices:
            degree[vertex] = degree.get(vertex, 0) + 1
    bound = 1.0
    for name, vertices in hyperedges.items():
        if not vertices:
            continue
        weight = max(1.0 / degree[v] for v in vertices)
        bound *= max(cardinalities[name], 0.0) ** weight
    return bound


class CoutCostModel(CostModel):
    """Sum of intermediate-result cardinalities."""

    def leaf_cost(self, name: str) -> float:
        return 0.0

    def combine_cost(self, kind, predicate, left, right, estimate) -> float:
        return estimate.cardinality


class RetrievalCostModel(CostModel):
    """Estimated base tuples retrieved, mirroring the planner's access paths.

    Accounting (matches :mod:`repro.engine.iterators`):

    * a base relation consumed as an outer input or as a hash/NL join
      input is fully scanned — pay its cardinality once, when consumed;
    * a base relation consumed as the *inner* of an equi-join whose key is
      indexed pays only the expected matching tuples (the estimated join
      cardinality);
    * composite inputs were already paid for in their own subplans.
    """

    def __init__(self, estimator: CardinalityEstimator, storage: Storage):
        super().__init__(estimator)
        self.storage = storage

    def leaf_cost(self, name: str) -> float:
        # Leaves cost nothing until they are consumed by an operator; the
        # access path decides the price.
        return 0.0

    def _scan_cost(self, plan: Plan) -> float:
        if isinstance(plan.expr, Rel):
            return float(len(self.storage[plan.expr.name]))
        return 0.0

    def combine_cost(self, kind, predicate, left, right, estimate) -> float:
        join_card = min(
            estimate.cardinality,
            left.cardinality * right.cardinality
            * self.estimator.join_selectivity(predicate, left.estimate, right.estimate),
        )
        # Outer (preserved/probe) side: base relations are scanned.
        cost = self._scan_cost(left)
        # Inner side: index probes if possible, scan otherwise.
        if isinstance(right.expr, Rel):
            table = self.storage[right.expr.name]
            split = split_equijoin(
                predicate,
                left.expr.scheme(self.storage.registry),
                table.schema,
            )
            if split is not None and table.index_on(split[1]) is not None:
                cost += max(join_card, 0.0)  # expected tuples fetched via the index
            else:
                cost += float(len(table))
        return cost
