"""Join/outerjoin optimizer: cardinality model, DP, greedy, and baselines."""

from repro.optimizer.baselines import OuterjoinBarrierOptimizer, fixed_order_plan
from repro.optimizer.cardinality import CardinalityEstimator, EstimateInfo
from repro.optimizer.cost import CostModel, CoutCostModel, RetrievalCostModel
from repro.optimizer.dp import DPOptimizer, optimize_graph
from repro.optimizer.fingerprint import graph_fingerprint, plan_cache_key, predicate_signature
from repro.optimizer.greedy import GreedyOptimizer, greedy_optimize
from repro.optimizer.pipeline import PipelineResult, optimize_and_run, optimize_query
from repro.optimizer.plancache import (
    CacheStats,
    PlanCache,
    active_plan_cache,
    default_plan_cache,
    reset_default_plan_cache,
)
from repro.optimizer.plans import Plan
from repro.optimizer.rewriter import RewriteOptimizer, RewriteResult
from repro.optimizer.subgraphs import combinable_pairs, connected_subsets, count_dp_entries

__all__ = [
    "CacheStats",
    "CardinalityEstimator",
    "CostModel",
    "CoutCostModel",
    "DPOptimizer",
    "EstimateInfo",
    "GreedyOptimizer",
    "OuterjoinBarrierOptimizer",
    "Plan",
    "PlanCache",
    "PipelineResult",
    "RewriteOptimizer",
    "RewriteResult",
    "RetrievalCostModel",
    "active_plan_cache",
    "combinable_pairs",
    "connected_subsets",
    "count_dp_entries",
    "default_plan_cache",
    "fixed_order_plan",
    "graph_fingerprint",
    "greedy_optimize",
    "optimize_and_run",
    "optimize_graph",
    "optimize_query",
    "plan_cache_key",
    "predicate_signature",
    "reset_default_plan_cache",
]
