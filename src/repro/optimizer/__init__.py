"""Join/outerjoin optimizer: cardinality model, DP, greedy, and baselines."""

from repro.optimizer.baselines import OuterjoinBarrierOptimizer, fixed_order_plan
from repro.optimizer.cardinality import CardinalityEstimator, EstimateInfo
from repro.optimizer.cost import CostModel, CoutCostModel, RetrievalCostModel
from repro.optimizer.dp import DPOptimizer, optimize_graph
from repro.optimizer.greedy import GreedyOptimizer, greedy_optimize
from repro.optimizer.pipeline import PipelineResult, optimize_and_run, optimize_query
from repro.optimizer.plans import Plan
from repro.optimizer.rewriter import RewriteOptimizer, RewriteResult
from repro.optimizer.subgraphs import combinable_pairs, connected_subsets, count_dp_entries

__all__ = [
    "CardinalityEstimator",
    "CostModel",
    "CoutCostModel",
    "DPOptimizer",
    "EstimateInfo",
    "GreedyOptimizer",
    "OuterjoinBarrierOptimizer",
    "Plan",
    "PipelineResult",
    "RewriteOptimizer",
    "RewriteResult",
    "RetrievalCostModel",
    "combinable_pairs",
    "connected_subsets",
    "count_dp_entries",
    "fixed_order_plan",
    "greedy_optimize",
    "optimize_and_run",
    "optimize_graph",
    "optimize_query",
]
