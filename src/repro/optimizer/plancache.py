"""A thread-safe LRU plan cache with generation-versioned invalidation.

Keys are canonical fingerprints (:mod:`repro.optimizer.fingerprint`);
values are whatever the optimizer wants to replay — the pipeline stores
its chosen expression together with the Theorem-1 verdict.  Every entry
is stamped with the :attr:`repro.engine.storage.Storage.generation` it
was optimized against; a lookup presenting a *different* generation
counts as an **invalidation** (the entry is dropped and re-optimized),
so data modifications and storage swaps can never replay a plan chosen
for stale statistics.

Replaying a plan for the *same* graph fingerprint is provably safe —
any valid implementing tree of a nice graph computes the same result
(Theorem 1), and the fingerprint pins the exact graph, pushed filters,
and cost model — so invalidation is purely an *optimality* guard, never
a correctness one.  The conformance harness still checks the claim
empirically (:func:`repro.conformance.plancache_check.check_plan_cache`).

Everything is stdlib: an ``OrderedDict`` under one lock.  Hits move the
entry to the MRU end; stores evict from the LRU end past ``capacity``.
Counters (hits/misses/invalidations/evictions) are mirrored into the
process-wide :mod:`repro.tools.instrumentation` sink so benchmark runs
and spans can report cache effectiveness without holding the cache.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.tools import instrumentation

#: Environment switch: ``0``/``off`` disables the default cache, any other
#: integer sets its capacity (``REPRO_PLAN_CACHE=512``).  Unset keeps the
#: default capacity below.
PLAN_CACHE_ENV = "REPRO_PLAN_CACHE"

#: Default entry capacity of the process-wide cache.
DEFAULT_CAPACITY = 256

_OFF = ("0", "false", "no", "off")


@dataclass
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    stores: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> Optional[float]:
        return self.hits / self.lookups if self.lookups else None

    def summary(self) -> str:
        rate = f"{self.hit_rate:.1%}" if self.hit_rate is not None else "n/a"
        return (
            f"plan cache: {self.size}/{self.capacity} entries, "
            f"{self.hits} hit(s) / {self.misses} miss(es) ({rate}), "
            f"{self.invalidations} invalidation(s), {self.evictions} eviction(s)"
        )


class PlanCache:
    """Thread-safe LRU mapping ``fingerprint -> (generation, value)``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[Hashable, Any]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._evictions = 0
        self._stores = 0

    def lookup(self, fingerprint: str, generation: Hashable) -> Optional[Any]:
        """The cached value, or None on miss / stale generation."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._misses += 1
                instrumentation.bump("plan_cache_misses")
                return None
            stamped, value = entry
            if stamped != generation:
                # The storage moved on (or is a different storage): the
                # cached choice reflects stale statistics.  Drop it.
                del self._entries[fingerprint]
                self._invalidations += 1
                self._misses += 1
                instrumentation.bump("plan_cache_invalidations")
                instrumentation.bump("plan_cache_misses")
                return None
            self._entries.move_to_end(fingerprint)
            self._hits += 1
            instrumentation.bump("plan_cache_hits")
            return value

    def store(self, fingerprint: str, generation: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU entries past capacity."""
        with self._lock:
            self._entries[fingerprint] = (generation, value)
            self._entries.move_to_end(fingerprint)
            self._stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                instrumentation.bump("plan_cache_evictions")

    def clear(self) -> None:
        """Drop every entry (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = 0
            self._invalidations = self._evictions = self._stores = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                invalidations=self._invalidations,
                evictions=self._evictions,
                stores=self._stores,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def summary(self) -> str:
        return self.stats().summary()

    def snapshot(self) -> Dict[str, int]:
        """Counter dict for reports (same fields as :class:`CacheStats`)."""
        stats = self.stats()
        return {
            "hits": stats.hits,
            "misses": stats.misses,
            "invalidations": stats.invalidations,
            "evictions": stats.evictions,
            "stores": stats.stores,
            "size": stats.size,
            "capacity": stats.capacity,
        }


# ---------------------------------------------------------------------------
# The process-wide default cache
# ---------------------------------------------------------------------------

_default: Optional[PlanCache] = None
_default_lock = threading.Lock()


def cache_enabled() -> bool:
    """Is plan caching enabled by the environment?  Unset means *on*."""
    raw = os.environ.get(PLAN_CACHE_ENV)
    return raw is None or raw.lower() not in _OFF


def _env_capacity() -> int:
    raw = os.environ.get(PLAN_CACHE_ENV)
    if raw is None:
        return DEFAULT_CAPACITY
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CAPACITY
    return value if value >= 1 else DEFAULT_CAPACITY


def default_plan_cache() -> PlanCache:
    """The lazily-created process-wide cache (ignores the on/off switch)."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = PlanCache(capacity=_env_capacity())
    return _default


def active_plan_cache() -> Optional[PlanCache]:
    """The cache the optimizer should consult, or None when disabled."""
    if not cache_enabled():
        return None
    return default_plan_cache()


def reset_default_plan_cache() -> None:
    """Drop the default cache's entries and zero its counters (tests)."""
    global _default
    with _default_lock:
        if _default is not None:
            _default.clear()
            _default.reset_stats()
        _default = None
