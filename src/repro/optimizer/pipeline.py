"""The end-to-end optimization pipeline of Sections 4 + 6.1.

``optimize_query`` strings together everything the paper develops:

1. **Simplify** (Section 4): strong restrictions convert outerjoins on
   their paths into joins (also 2-sided → 1-sided);
2. **Push restrictions** (Section 4): every conjunct sinks as deep as the
   null-supplied barriers allow;
3. **Abstract** (Section 1.2): the join/outerjoin core becomes a query
   graph — legal precisely when restrictions reached the leaves, because
   a filtered base relation is still a ground relation;
4. **Certify** (Theorem 1): nice + strong means the optimizer may emit
   *any* implementing tree;
5. **Optimize** (Section 6.1): DP over connected subgraphs, with
   cardinalities estimated against the *filtered* relations;
6. **Execute**: the chosen tree runs on the engine with the pushed
   filters reattached above the base scans.

When a restriction stays parked above an outerjoin (a genuinely
order-sensitive one, e.g. an ``IS NULL`` probe), the pipeline degrades
gracefully: it optimizes nothing and costs the simplified-but-unreordered
tree, reporting why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.algebra.predicates import Predicate, conjunction
from repro.core.expressions import Expression, Rel, Restrict
from repro.core.graph import QueryGraph, graph_of
from repro.core.gyo import JoinTree, join_tree_of
from repro.core.pushdown import push_restrictions
from repro.core.reorderability import ReorderabilityVerdict, theorem1_applies
from repro.core.simplify import simplify_outerjoins
from repro.core.wcoj_order import WcojSpec, wcoj_spec_of
from repro.engine.executor import ExecutionResult, execute, execute_plan
from repro.engine.storage import Storage, Table
from repro.observability.spans import maybe_span
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, CoutCostModel, RetrievalCostModel, agm_bound
from repro.optimizer.dp import DPOptimizer
from repro.optimizer.fingerprint import plan_cache_key
from repro.optimizer.plancache import PlanCache, active_plan_cache
from repro.util.fastpath import wcoj_enabled, yannakakis_enabled


@dataclass
class PipelineResult:
    """Everything the pipeline learned and decided."""

    original: Expression
    simplified: Expression
    pushed: Expression
    chosen: Expression
    reordered: bool
    verdict: Optional[ReorderabilityVerdict]
    conversions: List[str] = field(default_factory=list)
    placements: List[str] = field(default_factory=list)
    blocked: List[str] = field(default_factory=list)
    graph: Optional[QueryGraph] = None
    #: Canonical plan-cache key (graph + pushed filters + cost model);
    #: None when the query never reached the graph stage.
    fingerprint: Optional[str] = None
    #: True when the chosen plan (or verdict) was replayed from the cache.
    cache_hit: bool = False
    #: How ``optimize_and_run`` executes: the binary-tree DP plan ("dp"),
    #: the acyclic semijoin-reduced fast path ("yannakakis"), or the
    #: cyclic worst-case optimal Leapfrog Triejoin ("wcoj").
    strategy: str = "dp"
    #: The rooted join tree backing the acyclic fast path (None otherwise).
    join_tree: Optional[JoinTree] = None
    #: The trie layout + variable order backing the cyclic fast path
    #: (None unless the strategy is "wcoj").
    wcoj_spec: Optional[WcojSpec] = None
    #: Pushed leaf filters (relation -> conjuncts); what
    #: ``_reattach_filters`` re-applies and the Yannakakis builder scans
    #: under.  Empty when the query never reached the graph stage.
    leaf_filters: Dict[str, List[Predicate]] = field(default_factory=dict)

    def explain(self) -> str:
        lines = [f"original:   {self.original.to_infix()}"]
        for c in self.conversions:
            lines.append(f"  simplify: {c}")
        lines.append(f"simplified: {self.simplified.to_infix()}")
        for p in self.placements:
            lines.append(f"  push:     {p}")
        for b in self.blocked:
            lines.append(f"  BLOCKED:  {b}")
        lines.append(f"pushed:     {self.pushed.to_infix()}")
        if self.verdict is not None:
            lines.append(
                "Theorem 1:  "
                + ("freely reorderable" if self.verdict.freely_reorderable else "NOT freely reorderable")
            )
        lines.append(f"chosen:     {self.chosen.to_infix()}")
        return "\n".join(lines)


def _split_leaf_filters(expr: Expression) -> tuple[Expression, Dict[str, List[Predicate]]]:
    """Replace ``Restrict(Rel)`` leaves by bare leaves, collecting filters."""
    filters: Dict[str, List[Predicate]] = {}

    def walk(node: Expression) -> Expression:
        if isinstance(node, Restrict) and isinstance(node.child, Rel):
            filters.setdefault(node.child.name, []).extend(node.predicate.conjuncts())
            return node.child
        if isinstance(node, Rel):
            return node
        kids = node.children()
        if len(kids) == 2:
            return node.with_parts(walk(kids[0]), walk(kids[1]))  # type: ignore[attr-defined]
        if isinstance(node, Restrict):
            return Restrict(walk(node.child), node.predicate)
        return node

    return walk(expr), filters


def _reattach_filters(expr: Expression, filters: Dict[str, List[Predicate]]) -> Expression:
    def walk(node: Expression) -> Expression:
        if isinstance(node, Rel):
            preds = filters.get(node.name)
            if preds:
                return Restrict(node, conjunction(preds))
            return node
        kids = node.children()
        if len(kids) == 2:
            return node.with_parts(walk(kids[0]), walk(kids[1]))  # type: ignore[attr-defined]
        if isinstance(node, Restrict):
            return Restrict(walk(node.child), node.predicate)
        return node

    return walk(expr)


def _filtered_storage(storage: Storage, filters: Dict[str, List[Predicate]]) -> Storage:
    """A statistics view of the storage with leaf filters applied.

    Used only for cardinality estimation and index metadata, never for
    execution — the real plan filters above the original scans.
    """
    from repro.algebra.operators import restrict

    view = Storage()
    for name in storage:
        table = storage[name]
        preds = filters.get(name)
        if preds:
            filtered = restrict(table.to_relation(), conjunction(preds))
            new_table = Table(name, table.schema, list(filtered))
        else:
            new_table = Table(name, table.schema, list(table.rows))
        for attr in table.indexed_attributes:
            new_table.create_index(attr)
        view.add_table(new_table)
    return view


def optimize_query(
    query: Expression,
    storage: Storage,
    cost_model: str = "retrieval",
    cache: Optional[PlanCache] = None,
    use_cache: bool = True,
) -> PipelineResult:
    """Run the full Section-4 + Section-6.1 pipeline (see module docs).

    Plan caching: once the query's graph and pushed leaf filters are
    known, their canonical fingerprint is looked up in ``cache`` (the
    process default when None; pass ``use_cache=False`` to bypass
    entirely).  A hit stamped with the storage's current generation
    skips the niceness certificate, the statistics view, and the DP —
    replaying the cached implementing tree, which Theorem 1 makes
    interchangeable with any other valid tree of the same (nice, strong)
    graph.  A generation mismatch invalidates the entry instead.
    """
    if use_cache and cache is None:
        cache = active_plan_cache()
    with maybe_span("optimizer.pipeline", category="optimizer", cost_model=cost_model) as span:
        result = _optimize_query(query, storage, cost_model, cache if use_cache else None)
        if span is not None and result.fingerprint is not None:
            span.set(fingerprint=result.fingerprint)
            span.counters["plan_cache_hit" if result.cache_hit else "plan_cache_miss"] += 1
        return result


def _optimize_query(
    query: Expression,
    storage: Storage,
    cost_model: str,
    cache: Optional[PlanCache],
) -> PipelineResult:
    registry = storage.registry
    with maybe_span("optimizer.simplify", category="optimizer") as span:
        simplified_report = simplify_outerjoins(query, registry)
        if span is not None:
            span.counters["conversions"] = len(simplified_report.conversions)
    with maybe_span("optimizer.pushdown", category="optimizer") as span:
        push_report = push_restrictions(simplified_report.query, registry)
        if span is not None:
            span.counters["placements"] = len(push_report.placements)
            span.counters["blocked"] = len(push_report.blocked)

    result = PipelineResult(
        original=query,
        simplified=simplified_report.query,
        pushed=push_report.query,
        chosen=push_report.query,
        reordered=False,
        verdict=None,
        conversions=list(simplified_report.conversions),
        placements=list(push_report.placements),
        blocked=list(push_report.blocked),
    )
    if not push_report.fully_pushed:
        # Order-sensitive restriction: stay with the written order.
        return result

    core, filters = _split_leaf_filters(push_report.query)
    result.leaf_filters = filters
    # Multi-relation conjuncts parked above inner joins keep the core from
    # being a pure join/outerjoin tree; fall back in that case too.
    try:
        graph = graph_of(core, registry)
    except Exception:
        return result
    result.graph = graph
    result.fingerprint = plan_cache_key(graph, filters, cost_model)

    generation = storage.generation
    if cache is not None:
        hit = cache.lookup(result.fingerprint, generation)
        if hit is not None:
            # Replay: the fingerprint pins graph, filters, and cost
            # model; the generation stamp pins the statistics.  For a
            # freely-reorderable graph the cached entry carries the
            # chosen tree; otherwise only the (graph-determined)
            # verdict, because non-nice trees are NOT interchangeable
            # and the written order must stand.  The cached join tree /
            # WCOJ spec records the strategy *decision*; whether it is
            # taken is re-checked against the live fast-path switches,
            # mirroring HashJoin's execution-time parallel dispatch.
            verdict, chosen, join_tree, wcoj_spec = hit
            result.verdict = verdict
            result.cache_hit = True
            if chosen is not None:
                result.chosen = chosen
                result.reordered = True
            if join_tree is not None and yannakakis_enabled():
                result.join_tree = join_tree
                result.strategy = "yannakakis"
            elif wcoj_spec is not None and wcoj_enabled():
                result.wcoj_spec = wcoj_spec
                result.strategy = "wcoj"
            return result

    with maybe_span("optimizer.niceness", category="optimizer") as span:
        verdict = theorem1_applies(graph, registry)
        if span is not None:
            span.set(
                nice=verdict.nice,
                freely_reorderable=verdict.freely_reorderable,
            )
    result.verdict = verdict
    if not verdict.freely_reorderable:
        if cache is not None:
            cache.store(result.fingerprint, generation, (verdict, None, None, None))
        return result

    stats_view = _filtered_storage(storage, filters)
    estimator = CardinalityEstimator(stats_view)
    model: CostModel
    if cost_model == "retrieval":
        model = RetrievalCostModel(estimator, stats_view)
    elif cost_model == "cout":
        model = CoutCostModel(estimator)
    else:
        raise ValueError(f"unknown cost model {cost_model!r}")
    plan = DPOptimizer(graph, model).optimize()
    result.chosen = _reattach_filters(plan.expr, filters)
    result.reordered = True
    join_tree: Optional[JoinTree] = None
    if yannakakis_enabled():
        join_tree = _acyclic_fast_path(graph, registry, estimator, plan.expr)
    wcoj_spec: Optional[WcojSpec] = None
    if join_tree is None and wcoj_enabled():
        wcoj_spec = _cyclic_fast_path(graph, registry, estimator, plan.expr)
    if cache is not None:
        cache.store(
            result.fingerprint, generation, (verdict, result.chosen, join_tree, wcoj_spec)
        )
    if join_tree is not None:
        result.join_tree = join_tree
        result.strategy = "yannakakis"
    elif wcoj_spec is not None:
        result.wcoj_spec = wcoj_spec
        result.strategy = "wcoj"
    return result


def _acyclic_fast_path(
    graph: QueryGraph,
    registry,
    estimator: CardinalityEstimator,
    dp_expr: Expression,
) -> Optional[JoinTree]:
    """Take the Yannakakis fast path when it is safe *and* cheaper.

    Safety is :func:`~repro.core.gyo.join_tree_of`'s certificate (class
    hypergraph α-acyclic, every tree edge a real graph edge, outerjoins
    only under Theorem 1 with a core root and no chords).  The cost test
    compares C_out of the DP's binary tree against the reducer's bill:
    roughly three streaming passes over the (filtered) base relations
    plus the output itself — both measured with the same estimator, so
    the comparison is apples-to-apples.
    """
    with maybe_span("optimizer.yannakakis", category="optimizer") as span:
        tree = join_tree_of(graph, registry)
        if tree is None:
            if span is not None:
                span.set(acyclic=False, chosen=False)
            return None
        with estimator.memo_scope():
            dp_cost = CoutCostModel(estimator).plan_cost(dp_expr)
            base_total = sum(estimator.base(n).cardinality for n in tree.order)
            output = estimator.estimate_expression(dp_expr).cardinality
        yann_cost = base_total + output
        chosen = yann_cost < dp_cost
        if span is not None:
            span.set(acyclic=True, chosen=chosen)
            span.counters["dp_cost"] = int(dp_cost)
            span.counters["yannakakis_cost"] = int(yann_cost)
        return tree if chosen else None


def _cyclic_fast_path(
    graph: QueryGraph,
    registry,
    estimator: CardinalityEstimator,
    dp_expr: Expression,
) -> Optional[WcojSpec]:
    """Take the worst-case optimal path when it is eligible *and* cheaper.

    Eligibility is :func:`~repro.core.wcoj_order.wcoj_spec_of`'s call: a
    connected pure-join core (outerjoins stay on implementing trees —
    Theorem 1 never certifies reordering them into a cyclic core) whose
    attribute-class hypergraph is genuinely cyclic.  The cost test
    compares C_out of the DP's binary tree against the leapfrog bill:
    one pass over the (filtered) base relations to build/drain the tries
    plus the AGM fractional-cover bound on the output — the worst case
    the algorithm is guaranteed never to exceed.  Both sides use the
    same estimator under one memo scope, so the gate is apples-to-apples
    with the Yannakakis gate above.
    """
    with maybe_span("optimizer.wcoj", category="optimizer") as span:
        spec = wcoj_spec_of(graph, registry)
        if spec is None:
            if span is not None:
                span.set(cyclic=False, chosen=False)
            return None
        with estimator.memo_scope():
            dp_cost = CoutCostModel(estimator).plan_cost(dp_expr)
            cards = {name: estimator.base(name).cardinality for name in spec.order}
        wcoj_cost = sum(cards.values()) + agm_bound(spec.hyperedges(), cards)
        chosen = wcoj_cost < dp_cost
        if span is not None:
            span.set(cyclic=True, chosen=chosen)
            span.counters["dp_cost"] = int(dp_cost)
            span.counters["wcoj_cost"] = int(wcoj_cost)
        return spec if chosen else None


def optimize_and_run(
    query: Expression,
    storage: Storage,
    cost_model: str = "retrieval",
    cache: Optional[PlanCache] = None,
    use_cache: bool = True,
) -> tuple[PipelineResult, ExecutionResult]:
    """Optimize, execute the chosen plan, return both records.

    A "yannakakis" strategy builds the semijoin-reduced N-ary plan from
    the cached join tree and leaf filters; a "wcoj" strategy builds the
    Leapfrog Triejoin plan from the cached trie spec.  The switches are
    re-checked here so ``REPRO_YANNAKAKIS=0`` / ``REPRO_WCOJ=0`` fall
    back to the DP tree even on plans optimized (or cached) while the
    fast paths were on.

    A "dp" strategy falls through to :func:`repro.engine.executor.execute`,
    which consults the process-shard dispatch (``REPRO_SHARD``, default
    off) before planning the tree — so sharded execution needs no
    optimizer involvement here, and with the switch off this path is
    byte-identical to a build without the shard machinery.
    """
    result = optimize_query(
        query, storage, cost_model=cost_model, cache=cache, use_cache=use_cache
    )
    if (
        result.strategy == "yannakakis"
        and result.join_tree is not None
        and yannakakis_enabled()
    ):
        from repro.engine.yannakakis import build_yannakakis_plan

        plan = build_yannakakis_plan(result.join_tree, storage, result.leaf_filters)
        return result, execute_plan(plan)
    if (
        result.strategy == "wcoj"
        and result.wcoj_spec is not None
        and wcoj_enabled()
    ):
        from repro.engine.wcoj import build_wcoj_plan

        plan = build_wcoj_plan(result.wcoj_spec, storage, result.leaf_filters)
        return result, execute_plan(plan)
    execution = execute(result.chosen, storage)
    return result, execution
