"""Connected-subgraph enumeration for the optimizer's dynamic program.

Standard csg/cmp machinery specialized to join/outerjoin graphs: a pair of
disjoint connected node sets is *combinable* exactly when the cut between
them supports a single operator — all crossing edges are join edges, or
the cut is one outerjoin edge (Section 3.1's cut observation; the same
rule drives IT enumeration).  On a nice graph this makes the DP search
space exactly the implementing-tree space, which is the paper's Section
6.1 point: the optimizer needs *no extra analysis* to stay correct.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.core.enumeration import root_operator
from repro.core.graph import QueryGraph
from repro.util.fastpath import fast_enabled


def connected_subsets(graph: QueryGraph) -> List[FrozenSet[str]]:
    """All connected node subsets, ordered by size (smallest first).

    Enumerated by BFS-expansion from each seed node; exponential in the
    worst case.  The default bitset path enumerates masks on machine
    ints (memoized on the graph's :class:`~repro.core.bitset.BitsetIndex`)
    and converts to frozensets only here, at the API boundary.
    """
    if fast_enabled():
        index = graph.bitset_index()
        subsets = [index.set_of(mask) for mask in index.connected_subset_masks()]
        return sorted(subsets, key=lambda s: (len(s), sorted(s)))
    found: set[FrozenSet[str]] = set()
    frontier: List[FrozenSet[str]] = [frozenset({n}) for n in graph.nodes]
    found.update(frontier)
    while frontier:
        new_frontier: List[FrozenSet[str]] = []
        for subset in frontier:
            neighborhood: set[str] = set()
            for node in subset:
                neighborhood |= graph.neighbors(node)
            for nb in neighborhood - subset:
                bigger = subset | {nb}
                if bigger not in found:
                    found.add(bigger)
                    new_frontier.append(bigger)
        frontier = new_frontier
    return sorted(found, key=lambda s: (len(s), sorted(s)))


def combinable_pairs(
    graph: QueryGraph, nodes: FrozenSet[str]
) -> Iterator[Tuple[FrozenSet[str], FrozenSet[str], str, object]]:
    """Ordered pairs of connected halves of ``nodes`` with their operator.

    Yields ``(side_a, side_b, kind, predicate)`` where ``kind`` is
    ``"join"``/``"loj"``/``"roj"`` exactly as in IT enumeration.
    """
    if fast_enabled():
        index = graph.bitset_index()
        for sub, complement in index.ordered_partitions(index.mask_of(nodes)):
            op = index.cut_operator(sub, complement)
            if op is None:
                continue
            yield index.set_of(sub), index.set_of(complement), op[0], op[1]
        return
    members = sorted(nodes)
    n = len(members)
    for mask in range(1, (1 << n) - 1):
        side_a = frozenset(members[i] for i in range(n) if mask & (1 << i))
        side_b = nodes - side_a
        if not (graph.is_connected(side_a) and graph.is_connected(side_b)):
            continue
        op = root_operator(graph, side_a, side_b)
        if op is None:
            continue
        kind, predicate = op
        yield side_a, side_b, kind, predicate


def count_dp_entries(graph: QueryGraph) -> Dict[int, int]:
    """How many connected subsets exist per size (DP table shape)."""
    out: Dict[int, int] = {}
    for subset in connected_subsets(graph):
        out[len(subset)] = out.get(len(subset), 0) + 1
    return out
