"""Optimizer plan records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.core.expressions import Expression
from repro.optimizer.cardinality import EstimateInfo


@dataclass
class Plan:
    """A costed (sub)plan: the expression, its estimate, accumulated cost."""

    expr: Expression
    estimate: EstimateInfo
    cost: float

    @property
    def nodes(self) -> FrozenSet[str]:
        return self.estimate.nodes

    @property
    def cardinality(self) -> float:
        return self.estimate.cardinality

    def __str__(self) -> str:
        return (
            f"{self.expr.to_infix()}  "
            f"(cost={self.cost:.1f}, est. rows={self.cardinality:.1f})"
        )
