"""Canonical query-graph fingerprinting for plan reuse.

The paper's central object — the query graph of Section 1.2 — is already
canonical: parallel join conjuncts between the same pair of relations
collapse into one edge, outerjoin edges are directed at the null-supplied
relation, and *no trace of the written operator order survives*.  Theorem 1
then guarantees that for a nice graph with strong predicates, every valid
implementing tree computes the same result.  Together those two facts make
plan caching sound: two queries with the same graph (and the same pushed
leaf restrictions) are interchangeable, so a plan optimized for one may be
replayed for the other.

This module turns that argument into a key: a SHA-256 digest over the
graph's *sorted* canonical description —

* the sorted node (relation) list;
* each collapsed join edge as the sorted endpoint pair plus the *sorted*
  structural renderings of its conjuncts (conjunct order is a parsing
  accident, not semantics);
* each outerjoin edge as the directed ``preserved>null_supplied`` pair
  plus its predicate structure;
* optionally, the pushed-down leaf restrictions per relation (again with
  sorted conjuncts), because the pipeline's chosen plan reattaches them.

Sorting at every level makes the digest order-insensitive: writing
``(R1 ⋈ R2) ⋈ R3`` or ``(R3 ⋈ R2) ⋈ R1``, or listing a predicate's
conjuncts in any order, produces the same fingerprint.  Distinct graphs
collide only with SHA-256 probability.  Node *names* participate — the
fingerprint identifies a query shape over concrete relations, not an
isomorphism class — which is exactly the granularity a plan cache needs
(a plan names the tables it scans).

The digest is stable across processes and Python versions: it is computed
over structural ``repr`` strings, never over Python ``hash()`` values
(which are salted per process for strings).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Mapping, Optional

from repro.algebra.predicates import Predicate
from repro.core.graph import QueryGraph

#: Digest length (hex chars) kept in keys and reports; 128 bits of SHA-256
#: is far beyond any realistic cache population's collision horizon.
FINGERPRINT_HEX_LEN = 32


def predicate_signature(predicate: Predicate) -> str:
    """A canonical structural rendering of one predicate.

    Conjunctions are rendered as their *sorted* conjunct reprs so that
    ``p AND q`` and ``q AND p`` — and collapsed parallel edges built in
    either order — sign identically.  Everything below the top-level
    conjunction keeps its structure: predicates are immutable trees whose
    ``repr`` is deterministic and total.
    """
    conjuncts = predicate.conjuncts()
    if not conjuncts:  # TruePredicate
        return repr(predicate)
    return "&".join(sorted(repr(c) for c in conjuncts))


def _filter_lines(filters: Mapping[str, Iterable[Predicate]]) -> List[str]:
    lines = []
    for name in sorted(filters):
        preds = sorted(repr(p) for p in filters[name])
        if preds:
            lines.append(f"filter:{name}:{'&'.join(preds)}")
    return lines


def canonical_lines(
    graph: QueryGraph,
    filters: Optional[Mapping[str, Iterable[Predicate]]] = None,
) -> List[str]:
    """The sorted canonical description the fingerprint digests.

    Exposed separately from :func:`graph_fingerprint` so tests (and the
    curious) can inspect *what* is being hashed; one line per node, edge,
    and filtered relation.
    """
    lines = [f"node:{name}" for name in graph.nodes]
    for pair, predicate in graph.join_edges.items():
        u, v = sorted(pair)
        lines.append(f"join:{u}~{v}:{predicate_signature(predicate)}")
    for (u, v), predicate in graph.oj_edges.items():
        lines.append(f"oj:{u}>{v}:{predicate_signature(predicate)}")
    if filters:
        lines.extend(_filter_lines(filters))
    return sorted(lines)


def graph_fingerprint(
    graph: QueryGraph,
    filters: Optional[Mapping[str, Iterable[Predicate]]] = None,
) -> str:
    """The canonical fingerprint of a query graph (hex digest).

    ``filters`` optionally mixes in pushed-down leaf restrictions keyed
    by relation name — two queries over the same graph but with different
    base-table filters must not share a cached plan, because the chosen
    expression embeds the filters above its scans.
    """
    digest = hashlib.sha256()
    for line in canonical_lines(graph, filters):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()[:FINGERPRINT_HEX_LEN]


def plan_cache_key(
    graph: QueryGraph,
    filters: Optional[Dict[str, List[Predicate]]],
    cost_model: str,
) -> str:
    """The plan-cache lookup key for one optimization request.

    The cost model participates because different models legitimately
    choose different (all correct, per Theorem 1) implementing trees;
    caching across models would silently pin the first model's choice.
    """
    return f"{graph_fingerprint(graph, filters)}/{cost_model}"
